//! Property-based GC correctness: a shadow-model mutation sequence.
//!
//! An arbitrary sequence of allocations, field writes, cross-links, and
//! releases runs against a real collector while a host-side shadow model
//! records what every live object must contain. After the run (with
//! however many collections it triggered) every live object's data and
//! reference fields must match the model, and the heap verifier must find
//! no structural violations — under G1, NG2C-with-annotations, CMS, and a
//! final full compaction.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use rolp_gc::{full_compact, CmsCollector, NullHooks, RegionalCollector};
use rolp_heap::verify::assert_heap_valid;
use rolp_heap::{ClassId, Handle, Heap, HeapConfig, ObjectHeader};
use rolp_vm::{AllocRequest, CollectorApi, CostModel, JitConfig, ProgramBuilder, VmEnv};

/// One step of the mutation sequence.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate with `data` payload words stamped from `seed`; optionally
    /// annotate with a dynamic generation.
    Alloc { data: u8, seed: u64, gen: Option<u8> },
    /// Point live object `a`'s ref field at live object `b` (indices mod
    /// the live count).
    Link { a: usize, b: usize },
    /// Overwrite one payload word of a live object.
    Poke { target: usize, word: u64 },
    /// Release a live object.
    Release { target: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..24, any::<u64>(), prop::option::of(1u8..=14))
            .prop_map(|(data, seed, gen)| Op::Alloc { data, seed, gen }),
        2 => (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Link { a, b }),
        2 => (any::<usize>(), any::<u64>()).prop_map(|(target, word)| Op::Poke { target, word }),
        1 => any::<usize>().prop_map(|target| Op::Release { target }),
    ]
}

/// Shadow of one live object.
struct Shadow {
    handle: Handle,
    data: Vec<u64>,
    /// Index into the live vector of the object the single ref field
    /// points at (if any).
    link: Option<Handle>,
}

fn run_model(ops: &[Op], collector: &mut dyn CollectorApi, env: &mut VmEnv) {
    let class = ClassId(0);
    let mut live: Vec<Shadow> = Vec::new();

    for op in ops {
        match *op {
            Op::Alloc { data, seed, gen } => {
                let req = AllocRequest {
                    class,
                    ref_words: 1,
                    data_words: data as u32,
                    header: ObjectHeader::new(1),
                    context: None,
                    manual_gen: gen,
                    advised_gen: None,
                };
                let obj = collector.allocate(env, req);
                let handle = env.heap.handles.create(obj);
                let mut words = Vec::with_capacity(data as usize);
                for j in 0..data as u32 {
                    let v = seed.wrapping_mul(j as u64 + 1);
                    let o = env.heap.handles.get(handle);
                    env.heap.set_data(o, j, v);
                    words.push(v);
                }
                live.push(Shadow { handle, data: words, link: None });
            }
            Op::Link { a, b } => {
                if live.is_empty() {
                    continue;
                }
                let (a, b) = (a % live.len(), b % live.len());
                let oa = env.heap.handles.get(live[a].handle);
                let ob = env.heap.handles.get(live[b].handle);
                env.heap.set_ref(oa, 0, ob);
                let target = live[b].handle;
                live[a].link = Some(target);
            }
            Op::Poke { target, word } => {
                if live.is_empty() {
                    continue;
                }
                let t = target % live.len();
                if live[t].data.is_empty() {
                    continue;
                }
                let j = (word % live[t].data.len() as u64) as u32;
                let o = env.heap.handles.get(live[t].handle);
                env.heap.set_data(o, j, word);
                live[t].data[j as usize] = word;
            }
            Op::Release { target } => {
                if live.is_empty() {
                    continue;
                }
                let t = target % live.len();
                let victim = live.swap_remove(t);
                // Links *to* the victim keep it alive through the heap ref
                // itself — the shadow tracks the handle only for checking
                // reachable-through-handle objects, so clear stale links.
                for s in &mut live {
                    if s.link == Some(victim.handle) {
                        s.link = None;
                        let o = env.heap.handles.get(s.handle);
                        env.heap.set_ref(o, 0, rolp_heap::ObjectRef::NULL);
                    }
                }
                env.heap.handles.drop_handle(victim.handle);
            }
        }
    }

    // Final verification: every live object matches its shadow.
    for s in &live {
        let o = env.heap.handles.get(s.handle);
        for (j, &expect) in s.data.iter().enumerate() {
            assert_eq!(env.heap.get_data(o, j as u32), expect, "payload corrupted");
        }
        match s.link {
            Some(peer) => {
                assert_eq!(env.heap.get_ref(o, 0), env.heap.handles.get(peer), "link corrupted");
            }
            None => assert!(env.heap.get_ref(o, 0).is_null(), "stale link"),
        }
    }
    assert_heap_valid(&env.heap, false);

    // A full compaction afterwards must preserve everything too.
    let mut hooks = NullHooks;
    full_compact(env, &mut hooks);
    for s in &live {
        let o = env.heap.handles.get(s.handle);
        for (j, &expect) in s.data.iter().enumerate() {
            assert_eq!(env.heap.get_data(o, j as u32), expect, "payload lost in full GC");
        }
    }
    assert_heap_valid(&env.heap, true);
}

fn fresh_env() -> VmEnv {
    let mut heap = Heap::new(HeapConfig { region_bytes: 2048, max_heap_bytes: 512 * 1024 });
    heap.classes.register("prop.Node");
    VmEnv::new(heap, CostModel::default(), ProgramBuilder::new().build(), JitConfig::default(), 1)
}

fn hooks() -> Rc<RefCell<dyn rolp_gc::GcHooks>> {
    Rc::new(RefCell::new(NullHooks))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn g1_preserves_the_object_graph(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut env = fresh_env();
        let mut g1 = RegionalCollector::g1(hooks());
        run_model(&ops, &mut g1, &mut env);
    }

    #[test]
    fn ng2c_preserves_the_object_graph(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut env = fresh_env();
        let mut ng2c = RegionalCollector::ng2c(hooks());
        run_model(&ops, &mut ng2c, &mut env);
    }

    #[test]
    fn cms_preserves_the_object_graph(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut env = fresh_env();
        let mut cms = CmsCollector::new(hooks());
        run_model(&ops, &mut cms, &mut env);
    }
}
