//! Deterministic fault injection for the ROLP reproduction.
//!
//! The paper's robustness story (§5–§7) is about what the profiler does
//! when profiling stops paying for itself: allocation-site ids saturate
//! past the 16-bit space, adversarial call patterns collapse thread stack
//! states onto one table row, the OLD table floods, allocation bursts
//! starve the safepoint merge, and worker-table merges arrive late or not
//! at all. This crate describes those pressure scenarios as data — a
//! seedable [`FaultPlan`] — so the degradation governor can be driven
//! through its whole state machine *reproducibly*: the same plan and seed
//! produce the same injected events on every run.
//!
//! The crate is dependency-free by design (its own SplitMix64 generator,
//! no clocks): a plan is pure data, and the profiler asks the
//! [`FaultInjector`] what to inject at each GC cycle.

use std::fmt;

/// One pressure scenario within a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// From `at_cycle` on, the 16-bit allocation-site id space behaves as
    /// exhausted: new hot sites are refused a profile id (§7.5 saturation
    /// path) without allocating 65 535 real sites first.
    SiteIdExhaustion {
        /// GC cycle at which the space saturates.
        at_cycle: u64,
    },
    /// From `from_cycle` on, every profiled allocation's thread stack
    /// state is forced to `tss` — the adversarial collision where all
    /// call paths hash onto one stack-state row.
    TssCollision {
        /// GC cycle at which the collisions start.
        from_cycle: u64,
        /// The colliding stack-state value.
        tss: u16,
    },
    /// From `from_cycle` on, `rows_per_cycle` synthetic allocation records
    /// on pseudo-random contexts are poured into the OLD table each cycle
    /// (row flood: touched-row growth and record-path pressure).
    RowFlood {
        /// GC cycle at which the flood starts.
        from_cycle: u64,
        /// Synthetic records injected per cycle.
        rows_per_cycle: u32,
    },
    /// For cycles in `from_cycle..until_cycle`, `events_per_cycle`
    /// synthetic record-path events hit the profiler — an allocation burst
    /// that starves the safepoint merge budget.
    AllocBurst {
        /// First burst cycle (inclusive).
        from_cycle: u64,
        /// End of the burst (exclusive).
        until_cycle: u64,
        /// Record-path events injected per burst cycle.
        events_per_cycle: u64,
    },
    /// Every `every`-th GC cycle, the per-worker survival tables are
    /// *discarded* instead of merged (records lost).
    MergeDrop {
        /// Drop period in cycles (`cycle % every == 0` drops).
        every: u64,
    },
    /// Every `every`-th GC cycle, the safepoint merge is *skipped*; the
    /// worker tables carry their records to a later safepoint.
    MergeDelay {
        /// Delay period in cycles (`cycle % every == 0` skips the merge).
        every: u64,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::SiteIdExhaustion { at_cycle } => write!(f, "exhaust-ids@{at_cycle}"),
            FaultKind::TssCollision { from_cycle, tss } => {
                write!(f, "collide-tss@{from_cycle}={tss}")
            }
            FaultKind::RowFlood { from_cycle, rows_per_cycle } => {
                write!(f, "flood-rows@{from_cycle}x{rows_per_cycle}")
            }
            FaultKind::AllocBurst { from_cycle, until_cycle, events_per_cycle } => {
                write!(f, "burst@{from_cycle}..{until_cycle}x{events_per_cycle}")
            }
            FaultKind::MergeDrop { every } => write!(f, "drop-merge%{every}"),
            FaultKind::MergeDelay { every } => write!(f, "delay-merge%{every}"),
        }
    }
}

/// A named, seedable set of pressure scenarios.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Plan name (canned name or `"custom"` for parsed specs).
    pub name: String,
    /// Seed for the injector's pseudo-random context generation.
    pub seed: u64,
    /// The scenarios to run.
    pub faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// A plan injecting nothing (the identity element; useful as a
    /// baseline arm in tests).
    pub fn quiet() -> Self {
        FaultPlan { name: "quiet".into(), seed: 0, faults: Vec::new() }
    }

    /// The canned plans CI smokes: each exercises a different governor
    /// path and every one must complete without panic.
    pub fn canned_names() -> &'static [&'static str] {
        &["pressure-spike", "id-exhaustion", "merge-chaos"]
    }

    /// Looks up a canned plan by name.
    pub fn named(name: &str) -> Option<Self> {
        let (seed, faults): (u64, Vec<FaultKind>) = match name {
            // Record-path + table pressure that subsides: drives
            // Full -> degraded -> (hysteresis) -> recovery.
            "pressure-spike" => (
                11,
                vec![
                    FaultKind::AllocBurst {
                        from_cycle: 16,
                        until_cycle: 64,
                        events_per_cycle: 200_000,
                    },
                    FaultKind::RowFlood { from_cycle: 16, rows_per_cycle: 256 },
                ],
            ),
            // Saturate the id space, then collapse stack states.
            "id-exhaustion" => (
                22,
                vec![
                    FaultKind::SiteIdExhaustion { at_cycle: 24 },
                    FaultKind::TssCollision { from_cycle: 40, tss: 0x00AA },
                ],
            ),
            // Late and lost merges under a burst.
            "merge-chaos" => (
                33,
                vec![
                    FaultKind::MergeDrop { every: 3 },
                    FaultKind::MergeDelay { every: 5 },
                    FaultKind::AllocBurst {
                        from_cycle: 32,
                        until_cycle: 48,
                        events_per_cycle: 100_000,
                    },
                ],
            ),
            _ => return None,
        };
        Some(FaultPlan { name: name.into(), seed, faults })
    }

    /// Parses a plan: either a canned name or a `;`-separated spec of
    /// `seed=N` plus fault atoms in the [`fmt::Display`] syntax, e.g.
    /// `seed=7;burst@16..64x50000;drop-merge%5`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        if let Some(plan) = Self::named(spec.trim()) {
            return Ok(plan);
        }
        let mut plan = FaultPlan { name: "custom".into(), seed: 0, faults: Vec::new() };
        for atom in spec.split(';') {
            let atom = atom.trim();
            if atom.is_empty() {
                continue;
            }
            if let Some(seed) = atom.strip_prefix("seed=") {
                plan.seed = parse_u64(seed, atom)?;
            } else if let Some(rest) = atom.strip_prefix("exhaust-ids@") {
                plan.faults.push(FaultKind::SiteIdExhaustion { at_cycle: parse_u64(rest, atom)? });
            } else if let Some(rest) = atom.strip_prefix("collide-tss@") {
                let (cycle, tss) = match rest.split_once('=') {
                    Some((c, v)) => (parse_u64(c, atom)?, parse_u64(v, atom)? as u16),
                    None => (parse_u64(rest, atom)?, 0x00AA),
                };
                plan.faults.push(FaultKind::TssCollision { from_cycle: cycle, tss });
            } else if let Some(rest) = atom.strip_prefix("flood-rows@") {
                let (cycle, rows) = rest
                    .split_once('x')
                    .ok_or_else(|| bad_atom(atom, "expected <cycle>x<rows>"))?;
                plan.faults.push(FaultKind::RowFlood {
                    from_cycle: parse_u64(cycle, atom)?,
                    rows_per_cycle: parse_u64(rows, atom)? as u32,
                });
            } else if let Some(rest) = atom.strip_prefix("burst@") {
                let (range, events) = rest
                    .split_once('x')
                    .ok_or_else(|| bad_atom(atom, "expected <from>..<until>x<events>"))?;
                let (from, until) = range
                    .split_once("..")
                    .ok_or_else(|| bad_atom(atom, "expected <from>..<until>x<events>"))?;
                plan.faults.push(FaultKind::AllocBurst {
                    from_cycle: parse_u64(from, atom)?,
                    until_cycle: parse_u64(until, atom)?,
                    events_per_cycle: parse_u64(events, atom)?,
                });
            } else if let Some(rest) = atom.strip_prefix("drop-merge%") {
                plan.faults.push(FaultKind::MergeDrop { every: parse_period(rest, atom)? });
            } else if let Some(rest) = atom.strip_prefix("delay-merge%") {
                plan.faults.push(FaultKind::MergeDelay { every: parse_period(rest, atom)? });
            } else {
                return Err(format!(
                    "unknown fault atom '{atom}' (canned plans: {})",
                    Self::canned_names().join(", ")
                ));
            }
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (seed={}", self.name, self.seed)?;
        for fault in &self.faults {
            write!(f, ";{fault}")?;
        }
        write!(f, ")")
    }
}

fn parse_u64(s: &str, atom: &str) -> Result<u64, String> {
    s.trim().parse::<u64>().map_err(|_| bad_atom(atom, "not a number"))
}

fn parse_period(s: &str, atom: &str) -> Result<u64, String> {
    let n = parse_u64(s, atom)?;
    if n == 0 {
        return Err(bad_atom(atom, "period must be nonzero"));
    }
    Ok(n)
}

fn bad_atom(atom: &str, why: &str) -> String {
    format!("bad fault atom '{atom}': {why}")
}

/// SplitMix64 — the standard 64-bit mixer, small enough to own outright
/// so the crate stays dependency-free and the stream is stable forever.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// What to inject at one GC cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleFaults {
    /// Force the profile-id space exhausted before this cycle's work.
    pub exhaust_site_ids: bool,
    /// Force every profiled allocation's stack state to this value.
    pub forced_tss: Option<u16>,
    /// Synthetic allocation contexts to record into the OLD table.
    pub flood_contexts: Vec<u32>,
    /// Synthetic record-path events to charge against the epoch budget.
    pub burst_events: u64,
    /// Discard the per-worker tables instead of merging them.
    pub drop_merge: bool,
    /// Skip the safepoint merge (records carry over to a later cycle).
    pub delay_merge: bool,
}

impl CycleFaults {
    /// True when nothing is injected this cycle.
    pub fn is_quiet(&self) -> bool {
        self == &CycleFaults::default()
    }
}

/// The per-run injector: resolves a [`FaultPlan`] cycle by cycle.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    exhaust_fired: bool,
    injected_events: u64,
}

impl FaultInjector {
    /// An injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SplitMix64::new(plan.seed);
        FaultInjector { plan, rng, exhaust_fired: false, injected_events: 0 }
    }

    /// The plan being injected.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total synthetic record-path events injected so far (floods +
    /// bursts), for run reports.
    pub fn injected_events(&self) -> u64 {
        self.injected_events
    }

    /// Resolves the plan for GC cycle `cycle`. Deterministic: for a fixed
    /// plan, calling this for the same ascending cycle sequence yields
    /// the same injections.
    pub fn on_cycle(&mut self, cycle: u64) -> CycleFaults {
        let mut out = CycleFaults::default();
        for fault in &self.plan.faults {
            match *fault {
                FaultKind::SiteIdExhaustion { at_cycle } => {
                    if cycle >= at_cycle && !self.exhaust_fired {
                        out.exhaust_site_ids = true;
                        self.exhaust_fired = true;
                    }
                }
                FaultKind::TssCollision { from_cycle, tss } => {
                    if cycle >= from_cycle {
                        out.forced_tss = Some(tss);
                    }
                }
                FaultKind::RowFlood { from_cycle, rows_per_cycle } => {
                    if cycle >= from_cycle {
                        for _ in 0..rows_per_cycle {
                            // Site 0 is reserved; keep the flood off it so
                            // injected rows look like real profiled sites.
                            let raw = self.rng.next_u64() as u32;
                            let site = (((raw >> 16) as u16) | 1) as u32;
                            out.flood_contexts.push((site << 16) | (raw & 0xFFFF));
                        }
                        self.injected_events += rows_per_cycle as u64;
                    }
                }
                FaultKind::AllocBurst { from_cycle, until_cycle, events_per_cycle } => {
                    if (from_cycle..until_cycle).contains(&cycle) {
                        out.burst_events += events_per_cycle;
                        self.injected_events += events_per_cycle;
                    }
                }
                FaultKind::MergeDrop { every } => {
                    if cycle > 0 && cycle.is_multiple_of(every) {
                        out.drop_merge = true;
                    }
                }
                FaultKind::MergeDelay { every } => {
                    if cycle > 0 && cycle.is_multiple_of(every) {
                        out.delay_merge = true;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_plans_all_resolve() {
        for name in FaultPlan::canned_names() {
            let plan = FaultPlan::named(name).expect("canned plan exists");
            assert_eq!(&plan.name, name);
            assert!(!plan.faults.is_empty());
            // parse() accepts the canned name directly.
            assert_eq!(FaultPlan::parse(name).unwrap(), plan);
        }
        assert!(FaultPlan::named("no-such-plan").is_none());
    }

    #[test]
    fn spec_round_trips_through_parse() {
        let plan =
            FaultPlan::parse("seed=7;exhaust-ids@32;collide-tss@16=170;flood-rows@8x64;burst@16..64x50000;drop-merge%5;delay-merge%3")
                .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(
            plan.faults,
            vec![
                FaultKind::SiteIdExhaustion { at_cycle: 32 },
                FaultKind::TssCollision { from_cycle: 16, tss: 170 },
                FaultKind::RowFlood { from_cycle: 8, rows_per_cycle: 64 },
                FaultKind::AllocBurst { from_cycle: 16, until_cycle: 64, events_per_cycle: 50000 },
                FaultKind::MergeDrop { every: 5 },
                FaultKind::MergeDelay { every: 3 },
            ]
        );
    }

    #[test]
    fn parse_rejects_garbage_readably() {
        let err = FaultPlan::parse("seed=7;warp-core@9").unwrap_err();
        assert!(err.contains("warp-core"), "{err}");
        assert!(err.contains("pressure-spike"), "suggests canned plans: {err}");
        assert!(FaultPlan::parse("drop-merge%0").is_err(), "zero period");
        assert!(FaultPlan::parse("burst@16x5").is_err(), "missing range");
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let plan = FaultPlan::parse("seed=99;flood-rows@0x8").unwrap();
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for cycle in 0..20 {
            assert_eq!(a.on_cycle(cycle), b.on_cycle(cycle));
        }
        assert_eq!(a.injected_events(), 20 * 8);
        // A different seed yields different flood contexts.
        let mut c = FaultInjector::new(FaultPlan::parse("seed=100;flood-rows@0x8").unwrap());
        assert_ne!(a.on_cycle(20).flood_contexts, c.on_cycle(20).flood_contexts);
    }

    #[test]
    fn exhaustion_fires_exactly_once() {
        let mut inj = FaultInjector::new(FaultPlan::parse("exhaust-ids@4").unwrap());
        assert!(!inj.on_cycle(3).exhaust_site_ids);
        assert!(inj.on_cycle(4).exhaust_site_ids);
        assert!(!inj.on_cycle(5).exhaust_site_ids, "one-shot: already applied");
    }

    #[test]
    fn burst_and_merge_windows_respect_bounds() {
        let mut inj = FaultInjector::new(
            FaultPlan::parse("burst@10..12x5;drop-merge%4;delay-merge%6").unwrap(),
        );
        assert_eq!(inj.on_cycle(9).burst_events, 0);
        assert_eq!(inj.on_cycle(10).burst_events, 5);
        assert_eq!(inj.on_cycle(11).burst_events, 5);
        assert_eq!(inj.on_cycle(12).burst_events, 0, "until is exclusive");
        assert!(inj.on_cycle(16).drop_merge);
        assert!(!inj.on_cycle(17).drop_merge);
        assert!(inj.on_cycle(18).delay_merge);
        let quiet = inj.on_cycle(13);
        assert!(quiet.is_quiet());
    }

    #[test]
    fn flood_contexts_never_use_reserved_site_zero() {
        let mut inj = FaultInjector::new(FaultPlan::parse("seed=5;flood-rows@0x512").unwrap());
        for cycle in 0..4 {
            for ctx in inj.on_cycle(cycle).flood_contexts {
                assert_ne!(ctx >> 16, 0, "site id 0 is reserved for unprofiled");
            }
        }
    }
}
