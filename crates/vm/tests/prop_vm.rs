//! Property-based VM tests: arbitrary nested call/throw sequences against
//! a shadow model of the thread stack state.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use rolp_heap::{Heap, HeapConfig, ObjectRef, SpaceKind};
use rolp_vm::{
    AllocRequest, CallSiteId, CollectorApi, CostModel, GuestException, JitConfig, MutatorCtx,
    Program, ProgramBuilder, ThreadId, Vm, VmEnv, VmProfiler,
};

struct Bump;

impl CollectorApi for Bump {
    fn allocate(&mut self, env: &mut VmEnv, req: AllocRequest) -> ObjectRef {
        env.heap
            .alloc_in(SpaceKind::Eden, req.class, req.ref_words, req.data_words, req.header)
            .expect("test heap big enough")
    }
    fn name(&self) -> &'static str {
        "bump"
    }
    fn gc_cycles(&self) -> u64 {
        0
    }
}

/// A profiler whose only job is to control the exception hook.
struct HookProfiler {
    hook: bool,
}

impl VmProfiler for HookProfiler {
    fn on_jit_compile(&mut self, _p: &Program, _j: &mut rolp_vm::JitState, _m: rolp_vm::MethodId) {}
    fn on_alloc(&mut self, _pid: u16, _tss: u16, _t: ThreadId) -> u32 {
        0
    }
    fn exception_hook_installed(&self) -> bool {
        self.hook
    }
}

/// One action in a generated call tree.
#[derive(Debug, Clone)]
enum Action {
    /// Call site `i % N`, then recurse into `depth_budget - 1` actions.
    Call(usize),
    /// Call site `i % N` and throw inside it.
    Throw(usize),
    /// Plain work.
    Work,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => any::<usize>().prop_map(Action::Call),
        1 => any::<usize>().prop_map(Action::Throw),
        2 => Just(Action::Work),
    ]
}

/// Executes actions as a call tree; returns the shadow TSS the paper's
/// rules predict (with the rethrow hook installed the TSS is always
/// balanced; without it, every unwound profiled frame leaks its delta).
fn run_actions(
    ctx: &mut MutatorCtx<'_>,
    sites: &[CallSiteId],
    deltas: &[u16],
    hook: bool,
    actions: &[Action],
    shadow: &mut u16,
) {
    for action in actions {
        match action {
            Action::Work => ctx.work(3),
            Action::Call(i) => {
                let k = i % sites.len();
                ctx.call(sites[k], |ctx| ctx.work(2));
                // Balanced: add then sub of the same delta.
            }
            Action::Throw(i) => {
                let k = i % sites.len();
                let r = ctx.call_fallible(sites[k], |ctx| {
                    ctx.work(1);
                    Err::<(), _>(GuestException { code: 1 })
                });
                assert!(r.is_err());
                if !hook {
                    // Exit-side subtraction skipped: the delta leaks.
                    *shadow = shadow.wrapping_add(deltas[k]);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn tss_matches_the_shadow_model(
        actions in prop::collection::vec(action_strategy(), 0..120),
        hook in any::<bool>(),
    ) {
        // Program: one compiled caller with 3 profiled call sites.
        let mut b = ProgramBuilder::new();
        let caller = b.method("p.Main::run", 200, false);
        let mut sites = Vec::new();
        for i in 0..3 {
            let callee = b.method(format!("p.W{i}::go"), 100, false);
            sites.push(b.call_site(caller, callee));
        }
        let program = b.build();

        let mut heap = Heap::new(HeapConfig { region_bytes: 65536, max_heap_bytes: 1 << 22 });
        heap.classes.register("p.Obj");
        let env = VmEnv::new(
            heap,
            CostModel::default(),
            program,
            JitConfig { compile_threshold: 1, ..Default::default() },
            1,
        );
        let mut vm = Vm::new(
            env,
            Rc::new(RefCell::new(HookProfiler { hook })),
            Box::new(Bump),
            11,
        );

        // Compile the caller and callees, then enable all call profiling.
        let program_rc = Rc::clone(&vm.env.program);
        while !vm.env.jit.is_compiled(rolp_vm::MethodId(0)) {
            vm.env.jit.note_entry(&program_rc, rolp_vm::MethodId(0), &mut vm.rng);
        }
        for &cs in &sites {
            vm.ctx(ThreadId(0)).call(cs, |ctx| ctx.work(1)); // compiles callee
            vm.env.jit.enable_call_profiling(cs);
        }
        let deltas: Vec<u16> = sites.iter().map(|&cs| vm.env.jit.call_site(cs).delta).collect();
        prop_assert!(deltas.iter().all(|&d| d != 0));
        prop_assert_eq!(vm.env.threads[0].tss, 0, "balanced after warmup");

        let mut shadow = 0u16;
        {
            let mut ctx = vm.ctx(ThreadId(0));
            run_actions(&mut ctx, &sites, &deltas, hook, &actions, &mut shadow);
        }
        prop_assert_eq!(
            vm.env.threads[0].tss, shadow,
            "live TSS must equal the model (hook={})", hook
        );

        // Reconciliation (empty stack) always restores zero.
        let expected = vm.env.threads[0].expected_tss(|cs| vm.env.jit.call_site(cs).delta);
        prop_assert_eq!(expected, 0);
        vm.env.threads[0].reconcile_tss(expected);
        prop_assert_eq!(vm.env.threads[0].tss, 0);
    }
}
