//! VM integration tests: polymorphic dispatch, OSR corruption and repair,
//! inlining cost behaviour, and multi-thread stack-state isolation.

use std::cell::RefCell;
use std::rc::Rc;

use rolp_heap::{AllocFailure, ClassId, Heap, HeapConfig, ObjectRef, SpaceKind};
use rolp_vm::{
    AllocRequest, CollectorApi, CostModel, JitConfig, MethodId, NullProfiler, Program,
    ProgramBuilder, ThreadId, Vm, VmEnv, VmProfiler,
};

/// Bump-only collector for VM-level tests.
struct Bump;

impl CollectorApi for Bump {
    fn allocate(&mut self, env: &mut VmEnv, req: AllocRequest) -> ObjectRef {
        match env.heap.alloc_in(
            SpaceKind::Eden,
            req.class,
            req.ref_words,
            req.data_words,
            req.header,
        ) {
            Ok(r) => r,
            Err(AllocFailure::NeedsGc) => panic!("test heap exhausted"),
            Err(e) => panic!("{e:?}"),
        }
    }
    fn name(&self) -> &'static str {
        "bump"
    }
    fn gc_cycles(&self) -> u64 {
        0
    }
}

fn vm_with(program: Program, jit: JitConfig, threads: u32) -> Vm {
    let mut heap = Heap::new(HeapConfig { region_bytes: 64 * 1024, max_heap_bytes: 64 << 20 });
    heap.classes.register("t.Obj");
    let env = VmEnv::new(heap, CostModel::default(), program, jit, threads);
    Vm::new(env, Rc::new(RefCell::new(NullProfiler)), Box::new(Bump), 7)
}

#[test]
fn polymorphic_dispatch_heats_each_target_separately() {
    let mut b = ProgramBuilder::new();
    let caller = b.method("t.Caller::run", 100, false);
    let impl_a = b.method("t.ImplA::go", 80, false);
    let impl_b = b.method("t.ImplB::go", 80, false);
    let vs = b.virtual_call_site(caller);
    let program = b.build();
    let mut vm = vm_with(program, JitConfig { compile_threshold: 10, ..Default::default() }, 1);

    // Dispatch mostly to A.
    for i in 0..30 {
        let target: MethodId = if i % 3 == 0 { impl_b } else { impl_a };
        vm.ctx(ThreadId(0)).call_virtual(vs, target, |ctx| ctx.work(1));
    }
    assert!(vm.env.jit.is_compiled(impl_a));
    assert!(vm.env.jit.is_compiled(impl_b));
    assert_eq!(vm.env.jit.method(impl_a).invocations, 20);
    assert_eq!(vm.env.jit.method(impl_b).invocations, 10);
    // Polymorphic sites never inline.
    assert!(!vm.env.jit.call_site(vs).inlined);
}

#[test]
fn inlined_calls_are_cheaper_than_regular_calls() {
    let build = |inlineable: bool| {
        let mut b = ProgramBuilder::new();
        let main = b.method("t.Main::run", 60, false);
        let caller = b.method("t.Caller::work", 100, false);
        let helper = b.method("t.Helper::get", 10, inlineable);
        let cs_caller = b.call_site(main, caller);
        let cs_helper = b.call_site(caller, helper);
        (b.build(), cs_caller, cs_helper)
    };
    let time_with = |inlineable: bool| {
        let (program, cs_caller, cs_helper) = build(inlineable);
        let mut vm = vm_with(program, JitConfig { compile_threshold: 4, ..Default::default() }, 1);
        // Warm up so the caller compiles and the inlining decision is made.
        for _ in 0..10 {
            vm.ctx(ThreadId(0)).call(cs_caller, |ctx| {
                ctx.call(cs_helper, |ctx| ctx.work(1));
            });
        }
        let t0 = vm.env.clock.now();
        for _ in 0..10_000 {
            vm.ctx(ThreadId(0)).call(cs_caller, |ctx| {
                ctx.call(cs_helper, |ctx| ctx.work(1));
            });
        }
        (vm.env.clock.now() - t0).as_nanos()
    };
    let inlined = time_with(true);
    let not_inlined = time_with(false);
    assert!(
        not_inlined > inlined,
        "inlining must remove call overhead: inlined {inlined} vs not {not_inlined}"
    );
}

#[test]
fn osr_compile_corrupts_tss_until_reconciled() {
    let mut b = ProgramBuilder::new();
    let main = b.method("t.Main::run", 60, false);
    let looper = b.method("t.Loop::spin", 400, false);
    let cs = b.call_site(main, looper);
    let program = b.build();
    let jit = JitConfig {
        compile_threshold: 2, // main->looper site caller (main) stays cold;
        osr_threshold: 500,
        ..Default::default()
    };
    let mut vm = vm_with(program, jit, 1);

    // Compile main manually so the call site carries profiling code.
    let program_rc = Rc::clone(&vm.env.program);
    while !vm.env.jit.is_compiled(main) {
        vm.env.jit.note_entry(&program_rc, main, &mut vm.rng);
    }
    // Compile looper via its entries, then enable call profiling.
    vm.ctx(ThreadId(0)).call(cs, |ctx| ctx.work(1));
    vm.ctx(ThreadId(0)).call(cs, |ctx| ctx.work(1));
    assert!(vm.env.jit.is_compiled(looper));
    vm.env.jit.enable_call_profiling(cs);
    let delta = vm.env.jit.call_site(cs).delta;
    assert_ne!(delta, 0);

    // Balanced call: tss returns to zero.
    vm.ctx(ThreadId(0)).call(cs, |ctx| ctx.work(10));
    assert_eq!(vm.env.threads[0].tss, 0);

    // Simulate the §7.2.3 hazard directly: disable profiling mid-call so
    // the exit subtracts nothing while the entry added `delta`.
    {
        let mut ctx = vm.ctx(ThreadId(0));
        ctx.call(cs, |ctx| {
            ctx.work(1);
            // Mid-call toggle (what OSR or the conflict resolver can do).
            // We cannot reach the jit through ctx here, so do it after
            // entry via a nested scope below instead.
        });
    }
    // Direct corruption demonstration: entry with delta, exit after the
    // cell was zeroed.
    vm.env.threads[0].push_frame(cs, delta);
    vm.env.jit.disable_call_profiling(cs);
    vm.env.threads[0].pop_frame(vm.env.jit.call_site(cs).delta);
    assert_eq!(vm.env.threads[0].tss, delta, "corruption left behind");

    // Reconciliation (what ROLP runs at GC end) repairs it.
    let expected = vm.env.threads[0].expected_tss(|s| vm.env.jit.call_site(s).delta);
    vm.env.threads[0].reconcile_tss(expected);
    assert_eq!(vm.env.threads[0].tss, 0);
}

#[test]
fn threads_have_independent_stack_states() {
    let mut b = ProgramBuilder::new();
    let main = b.method("t.Main::run", 60, false);
    let callee = b.method("t.Worker::go", 100, false);
    let cs = b.call_site(main, callee);
    let program = b.build();
    let mut vm = vm_with(program, JitConfig { compile_threshold: 1, ..Default::default() }, 2);

    let program_rc = Rc::clone(&vm.env.program);
    while !vm.env.jit.is_compiled(main) {
        vm.env.jit.note_entry(&program_rc, main, &mut vm.rng);
    }
    vm.ctx(ThreadId(0)).call(cs, |ctx| ctx.work(1));
    vm.env.jit.enable_call_profiling(cs);
    let delta = vm.env.jit.call_site(cs).delta;

    // Thread 0 inside the call sees its own delta; thread 1 is untouched.
    vm.ctx(ThreadId(0)).call(cs, |ctx| {
        assert_eq!(ctx.env().threads[0].tss, delta);
        assert_eq!(ctx.env().threads[1].tss, 0);
    });
    assert_eq!(vm.env.threads[0].tss, 0);
}

#[test]
fn unprofiled_alloc_hook_fires_for_cold_and_filtered_sites() {
    #[derive(Default)]
    struct Counter {
        unprofiled: u64,
    }
    impl VmProfiler for Counter {
        fn on_jit_compile(&mut self, _p: &Program, _j: &mut rolp_vm::JitState, _m: MethodId) {
            // Never assigns profile ids: everything stays unprofiled.
        }
        fn on_alloc(&mut self, _pid: u16, _tss: u16, _t: ThreadId) -> u32 {
            0
        }
        fn on_unprofiled_alloc(&mut self) {
            self.unprofiled += 1;
        }
    }

    let mut b = ProgramBuilder::new();
    let main = b.method("t.Main::run", 60, false);
    let hot = b.method("t.Maker::make", 100, false);
    let cs = b.call_site(main, hot);
    let site = b.alloc_site(hot, 1);
    let program = b.build();
    let mut vm = vm_with(program, JitConfig { compile_threshold: 5, ..Default::default() }, 1);
    let counter = Rc::new(RefCell::new(Counter::default()));
    vm.profiler = counter.clone();

    for _ in 0..100 {
        vm.ctx(ThreadId(0)).call(cs, |ctx| {
            let h = ctx.alloc(site, ClassId(0), 0, 4);
            ctx.release(h);
        });
    }
    assert_eq!(counter.borrow().unprofiled, 100);
}
