//! Mutator threads and the thread stack state.
//!
//! Each guest thread carries the 16-bit *thread stack state* (TSS) the
//! paper maintains in thread-local storage: a commutative hash of the call
//! path, updated with wrapping addition at profiled call entries and
//! wrapping subtraction at exits (§3.2.1). Frames additionally remember
//! the amount that was actually added at entry, which is what lets the
//! end-of-GC reconciliation (§7.2.3) and the test suite compute the ground
//! truth after OSR, dynamic enable/disable, or exception unwinding have
//! corrupted the live value.

use crate::decisions::DecisionCache;
use crate::program::CallSiteId;

/// Identifier of a guest mutator thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadId(pub u32);

/// One frame of a guest thread's call stack.
#[derive(Debug, Clone, Copy)]
pub struct Frame {
    /// The call site that created this frame.
    pub call_site: CallSiteId,
    /// The delta actually added to the TSS at entry (0 if the site was not
    /// profiled at entry time).
    pub added: u16,
}

/// A guest mutator thread.
#[derive(Debug, Clone)]
pub struct MutatorThread {
    /// Thread identifier (also used as the biased-locking owner id).
    pub id: ThreadId,
    /// The live thread stack state word (may be corrupted; see module
    /// docs).
    pub tss: u16,
    /// Active frames, bottom to top.
    pub frames: Vec<Frame>,
    /// The thread's pretenuring-decision micro-cache (repeat allocation
    /// sites skip the `DecisionStore` table load entirely).
    pub decision_cache: DecisionCache,
}

impl MutatorThread {
    /// Creates an idle thread with an empty stack.
    pub fn new(id: ThreadId) -> Self {
        MutatorThread { id, tss: 0, frames: Vec::new(), decision_cache: DecisionCache::new() }
    }

    /// Applies the entry-side TSS update and pushes a frame.
    pub fn push_frame(&mut self, call_site: CallSiteId, delta: u16) {
        self.tss = self.tss.wrapping_add(delta);
        self.frames.push(Frame { call_site, added: delta });
    }

    /// Pops a frame and applies the exit-side TSS update with the *current*
    /// delta of the site — which is what compiled code does, and which
    /// diverges from `added` when profiling was toggled mid-call.
    pub fn pop_frame(&mut self, current_delta: u16) -> Frame {
        let f = self.frames.pop().expect("pop on empty guest stack");
        self.tss = self.tss.wrapping_sub(current_delta);
        f
    }

    /// Pops a frame without touching the TSS (exception unwinding when the
    /// rethrow hook is disabled — the corruption case of §7.2.2).
    pub fn pop_frame_skipping_update(&mut self) -> Frame {
        self.frames.pop().expect("pop on empty guest stack")
    }

    /// The TSS value the live stack *should* have given current per-site
    /// deltas: the sum of the current deltas of every profiled frame on
    /// the stack. This is what the paper's end-of-GC stack traversal
    /// computes (§7.2.3).
    pub fn expected_tss(&self, current_delta: impl Fn(CallSiteId) -> u16) -> u16 {
        self.frames.iter().fold(0u16, |acc, f| acc.wrapping_add(current_delta(f.call_site)))
    }

    /// Overwrites the live TSS (the reconciliation fix).
    pub fn reconcile_tss(&mut self, value: u16) {
        self.tss = value;
    }

    /// Current stack depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CS_A: CallSiteId = CallSiteId(0);
    const CS_B: CallSiteId = CallSiteId(1);

    #[test]
    fn push_pop_is_balanced_when_deltas_are_stable() {
        let mut t = MutatorThread::new(ThreadId(1));
        t.push_frame(CS_A, 100);
        t.push_frame(CS_B, 7);
        assert_eq!(t.tss, 107);
        t.pop_frame(7);
        t.pop_frame(100);
        assert_eq!(t.tss, 0);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn tss_wraps_instead_of_overflowing() {
        let mut t = MutatorThread::new(ThreadId(1));
        t.push_frame(CS_A, u16::MAX);
        t.push_frame(CS_B, 2);
        assert_eq!(t.tss, 1); // 65535 + 2 wraps to 1
        t.pop_frame(2);
        t.pop_frame(u16::MAX);
        assert_eq!(t.tss, 0);
    }

    #[test]
    fn toggling_profiling_mid_call_corrupts_and_reconciles() {
        let mut t = MutatorThread::new(ThreadId(1));
        // Enter while profiling disabled (delta 0)...
        t.push_frame(CS_A, 0);
        // ...profiling gets enabled mid-call; compiled exit code now
        // subtracts the nonzero delta.
        t.pop_frame(55);
        assert_eq!(t.tss, 0u16.wrapping_sub(55), "live TSS is corrupted");
        // Reconciliation against the (now empty) stack repairs it.
        let expected = t.expected_tss(|_| 55);
        t.reconcile_tss(expected);
        assert_eq!(t.tss, 0);
    }

    #[test]
    fn skipped_exception_update_leaves_residue() {
        let mut t = MutatorThread::new(ThreadId(1));
        t.push_frame(CS_A, 9);
        t.pop_frame_skipping_update();
        assert_eq!(t.tss, 9, "unwind without the rethrow hook leaks the delta");
    }

    #[test]
    fn expected_tss_sums_current_deltas_of_live_frames() {
        let mut t = MutatorThread::new(ThreadId(1));
        t.push_frame(CS_A, 10);
        t.push_frame(CS_B, 0); // was unprofiled at entry
                               // Site B has since been enabled with delta 4.
        let expected = t.expected_tss(|cs| if cs == CS_A { 10 } else { 4 });
        assert_eq!(expected, 14);
    }
}
