//! JIT-compilation simulation.
//!
//! The paper's profiler hinges on HotSpot JIT behaviour: profiling code is
//! installed only in compiled (hot) methods (§3.2), inlined call sites are
//! never profiled (§7.2.1), call-site profiling is a per-site value cell
//! that is *zero when disabled* so the emitted `test`/`je` skips the
//! `add`/`sub` (§3.2.4), and on-stack replacement can flip a method from
//! interpreted to compiled mid-execution, corrupting the thread stack
//! state until ROLP's end-of-GC reconciliation repairs it (§7.2.3).
//!
//! [`JitState`] reproduces all of that: invocation/backedge counters per
//! method, compile events, inlining decisions, the per-call-site delta
//! cell, and the per-allocation-site 16-bit profile id assignment.

use rand::rngs::StdRng;
use rand::Rng;

use crate::program::{AllocSiteId, CallSiteId, MethodId, Program};

/// Default invocation count after which a method is compiled.
pub const DEFAULT_COMPILE_THRESHOLD: u64 = 64;
/// Default loop-backedge count after which a running method is
/// OSR-compiled.
pub const DEFAULT_OSR_THRESHOLD: u64 = 4_096;
/// Callee bytecode size up to which monomorphic call sites are inlined.
pub const DEFAULT_INLINE_SIZE: u32 = 36;

/// Dynamic state of one method.
#[derive(Debug, Clone, Default)]
pub struct MethodState {
    /// Entry count (interpreted + compiled).
    pub invocations: u64,
    /// Loop backedges taken while this method ran interpreted.
    pub backedges: u64,
    /// Whether the method is currently JIT-compiled.
    pub compiled: bool,
    /// Whether the compile happened through on-stack replacement.
    pub osr_compiled: bool,
}

/// Dynamic state of one call site.
#[derive(Debug, Clone, Default)]
pub struct CallSiteState {
    /// The caller was compiled and this site was inlined away: no call
    /// overhead, and *never* any profiling code (paper §7.2.1).
    pub inlined: bool,
    /// The site's unique method-call identifier cell (`as_{m+i}` in the
    /// paper). Zero = profiling disabled; the emitted fast branch skips
    /// the `add`/`sub`. Nonzero = the amount added to / subtracted from
    /// the thread stack state around the call.
    pub delta: u16,
    /// The identifier reserved for this site at JIT time (what gets
    /// written into `delta` when ROLP enables the site).
    pub reserved_delta: u16,
}

/// Dynamic state of one allocation site.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllocSiteState {
    /// The 16-bit allocation-site identifier assigned when the containing
    /// method was compiled, if the site is profiled (hot + passes the
    /// package filter).
    pub profile_id: Option<u16>,
}

/// A JIT event, reported to the profiler hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JitEvent {
    /// Normal counter-triggered compilation at method entry.
    Compile(MethodId),
    /// On-stack replacement: the method was compiled while executing; any
    /// already-active frames of it never ran the entry profiling code.
    OsrCompile(MethodId),
}

/// Tunables for the JIT simulation.
#[derive(Debug, Clone)]
pub struct JitConfig {
    /// Invocations before a method is compiled.
    pub compile_threshold: u64,
    /// Backedges before a running interpreted method is OSR-compiled.
    pub osr_threshold: u64,
    /// Max callee bytecode size for inlining monomorphic call sites.
    pub inline_size: u32,
    /// Whether call-site profiling code (the `test`/`je` fast branch
    /// around calls) is emitted at all. False for plain-JVM baselines and
    /// for ROLP's *no-call-profiling* level (paper Fig. 6 leftmost bars):
    /// calls then carry zero profiling cost and the thread stack state is
    /// never touched.
    pub install_call_profiling: bool,
    /// Memento-style ablation (paper §9.1): also profile allocations in
    /// *interpreted* code, from the first execution. ROLP deliberately
    /// does not do this — instrumenting the interpreter costs far more per
    /// allocation and covers code that contributes little.
    pub profile_interpreted: bool,
}

impl Default for JitConfig {
    fn default() -> Self {
        JitConfig {
            compile_threshold: DEFAULT_COMPILE_THRESHOLD,
            osr_threshold: DEFAULT_OSR_THRESHOLD,
            inline_size: DEFAULT_INLINE_SIZE,
            install_call_profiling: true,
            profile_interpreted: false,
        }
    }
}

/// All dynamic JIT state of a running VM.
#[derive(Debug)]
pub struct JitState {
    config: JitConfig,
    methods: Vec<MethodState>,
    call_sites: Vec<CallSiteState>,
    alloc_sites: Vec<AllocSiteState>,
    /// Next allocation-site profile id to hand out (ids are never reused;
    /// the OLD table is sized by the 16-bit id space, §7.5).
    next_profile_id: u16,
    /// Profile ids exhausted (more than 65 535 hot allocation sites).
    profile_ids_exhausted: bool,
    /// Requests for a profile id refused after exhaustion (the §7.5
    /// saturate-and-report discipline: ids are never wrapped or reused).
    profile_id_overflows: u64,
    /// Whether the per-allocation profiling instructions are live. The
    /// degradation governor clears this in its `Off` state so the
    /// allocation fast path degenerates to the single `profile_id`
    /// branch — no OLD-table increment, no context install, no charge.
    alloc_profiling_enabled: bool,
    compiles: u64,
    osr_compiles: u64,
    total_invocations: u64,
    /// When set, call-profiling toggles are appended to `toggle_log` for
    /// the flight recorder to drain at the next GC safepoint (the same
    /// unsynchronized-then-merge discipline the OLD table uses, §7.6).
    log_toggles: bool,
    toggle_log: Vec<(CallSiteId, bool)>,
}

impl JitState {
    /// Creates JIT state sized for `program`.
    pub fn new(program: &Program, config: JitConfig) -> Self {
        JitState {
            config,
            methods: vec![MethodState::default(); program.num_methods()],
            call_sites: vec![CallSiteState::default(); program.num_call_sites()],
            alloc_sites: vec![AllocSiteState::default(); program.num_alloc_sites()],
            next_profile_id: 1, // id 0 is reserved for "unprofiled"
            profile_ids_exhausted: false,
            profile_id_overflows: 0,
            alloc_profiling_enabled: true,
            compiles: 0,
            osr_compiles: 0,
            total_invocations: 0,
            log_toggles: false,
            toggle_log: Vec::new(),
        }
    }

    /// Turns call-profiling toggle logging on or off (off by default; the
    /// flight recorder enables it when tracing is requested).
    pub fn set_toggle_logging(&mut self, enabled: bool) {
        self.log_toggles = enabled;
    }

    /// Drains the buffered call-profiling toggles (site, enabled) in the
    /// order they happened. Called at GC safepoints by the recorder.
    pub fn take_toggle_log(&mut self) -> Vec<(CallSiteId, bool)> {
        std::mem::take(&mut self.toggle_log)
    }

    /// The configuration in use.
    pub fn config(&self) -> &JitConfig {
        &self.config
    }

    /// Method state.
    pub fn method(&self, m: MethodId) -> &MethodState {
        &self.methods[m.0 as usize]
    }

    /// Call-site state.
    pub fn call_site(&self, cs: CallSiteId) -> &CallSiteState {
        &self.call_sites[cs.0 as usize]
    }

    /// Allocation-site state.
    pub fn alloc_site(&self, s: AllocSiteId) -> &AllocSiteState {
        &self.alloc_sites[s.0 as usize]
    }

    /// True if `m` currently runs compiled.
    pub fn is_compiled(&self, m: MethodId) -> bool {
        self.methods[m.0 as usize].compiled
    }

    /// Total compilations performed.
    pub fn compiles(&self) -> u64 {
        self.compiles
    }

    /// Of which on-stack replacements.
    pub fn osr_compiles(&self) -> u64 {
        self.osr_compiles
    }

    /// Total (non-inlined) method invocations observed.
    pub fn total_invocations(&self) -> u64 {
        self.total_invocations
    }

    /// Counts a method entry; returns a compile event when the threshold
    /// trips.
    pub fn note_entry(
        &mut self,
        program: &Program,
        m: MethodId,
        rng: &mut StdRng,
    ) -> Option<JitEvent> {
        self.total_invocations += 1;
        let st = &mut self.methods[m.0 as usize];
        st.invocations += 1;
        if !st.compiled && st.invocations >= self.config.compile_threshold {
            self.compile(program, m, false, rng);
            return Some(JitEvent::Compile(m));
        }
        None
    }

    /// Counts `n` loop backedges in a running method; returns an OSR event
    /// when the threshold trips while the method is interpreted.
    pub fn note_backedges(
        &mut self,
        program: &Program,
        m: MethodId,
        n: u64,
        rng: &mut StdRng,
    ) -> Option<JitEvent> {
        let st = &mut self.methods[m.0 as usize];
        if st.compiled {
            return None;
        }
        st.backedges += n;
        if st.backedges >= self.config.osr_threshold {
            self.compile(program, m, true, rng);
            return Some(JitEvent::OsrCompile(m));
        }
        None
    }

    /// Compiles `m`: decides inlining for its call sites and reserves
    /// call-site identifier values. Allocation-site profile ids are *not*
    /// assigned here — that is the profiler's decision (package filters,
    /// profiling level), made in its `on_jit_compile` hook via
    /// [`JitState::assign_profile_id`].
    fn compile(&mut self, program: &Program, m: MethodId, osr: bool, rng: &mut StdRng) {
        let st = &mut self.methods[m.0 as usize];
        debug_assert!(!st.compiled, "double compile");
        st.compiled = true;
        st.osr_compiled = osr;
        self.compiles += 1;
        if osr {
            self.osr_compiles += 1;
        }
        for &cs in program.call_sites_of(m) {
            let decl = program.call_site(cs);
            let inlined = match decl.callee {
                Some(callee) => {
                    let c = program.method(callee);
                    c.inlineable && c.bytecode_size <= self.config.inline_size
                }
                None => false, // polymorphic sites are never inlined
            };
            let site = &mut self.call_sites[cs.0 as usize];
            site.inlined = inlined;
            if !inlined && site.reserved_delta == 0 {
                // Reserve a unique nonzero identifier; value installed into
                // the live cell only when ROLP enables the site (paper §5
                // step 1: no method call is profiled at startup).
                site.reserved_delta = rng.gen_range(1..=u16::MAX);
            }
        }
    }

    /// Assigns (or returns the existing) 16-bit profile id for an
    /// allocation site. Returns `None` once the id space is exhausted —
    /// the id counter *saturates* rather than wrapping, because a wrapped
    /// id would alias two distinct sites into one packed allocation
    /// context (see `rolp::context`). Refused requests are counted in
    /// [`JitState::profile_id_overflows`].
    pub fn assign_profile_id(&mut self, s: AllocSiteId) -> Option<u16> {
        if let Some(id) = self.alloc_sites[s.0 as usize].profile_id {
            return Some(id);
        }
        if self.profile_ids_exhausted {
            self.profile_id_overflows += 1;
            return None;
        }
        let id = self.next_profile_id;
        if self.next_profile_id == u16::MAX {
            self.profile_ids_exhausted = true;
        } else {
            self.next_profile_id += 1;
        }
        self.alloc_sites[s.0 as usize].profile_id = Some(id);
        Some(id)
    }

    /// True once the 16-bit profile-id space is exhausted (§7.5).
    pub fn profile_ids_exhausted(&self) -> bool {
        self.profile_ids_exhausted
    }

    /// Profile-id requests refused after exhaustion.
    pub fn profile_id_overflows(&self) -> u64 {
        self.profile_id_overflows
    }

    /// Marks the 16-bit profile-id space exhausted immediately, as if
    /// 65 535 hot allocation sites had already been seen. Already-assigned
    /// ids keep working; new sites are refused (and counted). Used by the
    /// fault-injection layer to exercise the saturation path.
    pub fn force_profile_id_exhaustion(&mut self) {
        self.profile_ids_exhausted = true;
    }

    /// Whether per-allocation profiling instructions are live.
    #[inline]
    pub fn alloc_profiling_enabled(&self) -> bool {
        self.alloc_profiling_enabled
    }

    /// Switches the per-allocation profiling instructions on or off (the
    /// governor's `Off` state patches them out; recovery patches them back
    /// in — assigned profile ids are retained either way).
    pub fn set_alloc_profiling(&mut self, enabled: bool) {
        self.alloc_profiling_enabled = enabled;
    }

    /// Enables call-site profiling: installs the reserved identifier into
    /// the live cell. No-op for inlined or never-compiled sites.
    pub fn enable_call_profiling(&mut self, cs: CallSiteId) {
        let site = &mut self.call_sites[cs.0 as usize];
        if !site.inlined {
            site.delta = site.reserved_delta;
            if self.log_toggles {
                self.toggle_log.push((cs, true));
            }
        }
    }

    /// Disables call-site profiling (zeroes the cell; the fast branch now
    /// falls through).
    pub fn disable_call_profiling(&mut self, cs: CallSiteId) {
        let site = &mut self.call_sites[cs.0 as usize];
        if site.delta != 0 && self.log_toggles {
            self.toggle_log.push((cs, false));
        }
        site.delta = 0;
    }

    /// Call sites that are compiled into some method, not inlined, and thus
    /// *candidates* for profiling (the population P is drawn from, §5).
    pub fn profilable_call_sites(&self, program: &Program) -> Vec<CallSiteId> {
        program
            .call_sites()
            .filter(|&cs| {
                let caller = program.call_site(cs).caller;
                self.is_compiled(caller) && !self.call_sites[cs.0 as usize].inlined
            })
            .collect()
    }

    /// Number of profiled (enabled) call sites.
    pub fn enabled_call_sites(&self) -> usize {
        self.call_sites.iter().filter(|s| s.delta != 0).count()
    }

    /// Number of allocation sites holding a profile id.
    pub fn profiled_alloc_sites(&self) -> usize {
        self.alloc_sites.iter().filter(|s| s.profile_id.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn sample_program() -> (Program, MethodId, MethodId, MethodId, CallSiteId, CallSiteId) {
        let mut b = ProgramBuilder::new();
        let hot = b.method("a.Hot::run", 300, false);
        let tiny = b.method("a.Tiny::get", 8, true);
        let big = b.method("a.Big::work", 500, false);
        let cs_tiny = b.call_site(hot, tiny);
        let cs_big = b.call_site(hot, big);
        let p = b.build();
        (p, hot, tiny, big, cs_tiny, cs_big)
    }

    #[test]
    fn methods_compile_at_threshold() {
        let (p, hot, ..) = sample_program();
        let mut jit = JitState::new(&p, JitConfig { compile_threshold: 3, ..Default::default() });
        let mut r = rng();
        assert!(jit.note_entry(&p, hot, &mut r).is_none());
        assert!(jit.note_entry(&p, hot, &mut r).is_none());
        assert_eq!(jit.note_entry(&p, hot, &mut r), Some(JitEvent::Compile(hot)));
        assert!(jit.is_compiled(hot));
        // Further entries do not recompile.
        assert!(jit.note_entry(&p, hot, &mut r).is_none());
        assert_eq!(jit.compiles(), 1);
    }

    #[test]
    fn small_monomorphic_sites_inline_large_ones_do_not() {
        let (p, hot, _tiny, _big, cs_tiny, cs_big) = sample_program();
        let mut jit = JitState::new(&p, JitConfig { compile_threshold: 1, ..Default::default() });
        let mut r = rng();
        jit.note_entry(&p, hot, &mut r);
        assert!(jit.call_site(cs_tiny).inlined);
        assert!(!jit.call_site(cs_big).inlined);
        // Non-inlined site got a reserved identifier, but profiling starts
        // disabled (paper §5 step 1).
        assert_ne!(jit.call_site(cs_big).reserved_delta, 0);
        assert_eq!(jit.call_site(cs_big).delta, 0);
        // Inlined sites never get an identifier.
        assert_eq!(jit.call_site(cs_tiny).reserved_delta, 0);
    }

    #[test]
    fn polymorphic_sites_never_inline() {
        let mut b = ProgramBuilder::new();
        let hot = b.method("a.Hot::run", 300, false);
        let _t = b.method("a.Tiny::get", 8, true);
        let vs = b.virtual_call_site(hot);
        let p = b.build();
        let mut jit = JitState::new(&p, JitConfig { compile_threshold: 1, ..Default::default() });
        jit.note_entry(&p, hot, &mut rng());
        assert!(!jit.call_site(vs).inlined);
        assert_ne!(jit.call_site(vs).reserved_delta, 0);
    }

    #[test]
    fn osr_compiles_on_backedges() {
        let (p, hot, ..) = sample_program();
        let mut jit = JitState::new(
            &p,
            JitConfig { compile_threshold: 1_000_000, osr_threshold: 100, ..Default::default() },
        );
        let mut r = rng();
        assert!(jit.note_backedges(&p, hot, 99, &mut r).is_none());
        assert_eq!(jit.note_backedges(&p, hot, 1, &mut r), Some(JitEvent::OsrCompile(hot)));
        assert!(jit.method(hot).osr_compiled);
        assert_eq!(jit.osr_compiles(), 1);
        // Compiled methods ignore further backedges.
        assert!(jit.note_backedges(&p, hot, 1_000, &mut r).is_none());
    }

    #[test]
    fn profile_ids_are_unique_and_stable() {
        let mut b = ProgramBuilder::new();
        let m = b.method("x.M::f", 100, false);
        let s1 = b.alloc_site(m, 1);
        let s2 = b.alloc_site(m, 2);
        let p = b.build();
        let mut jit = JitState::new(&p, JitConfig::default());
        let a = jit.assign_profile_id(s1).unwrap();
        let bid = jit.assign_profile_id(s2).unwrap();
        assert_ne!(a, bid);
        assert_ne!(a, 0);
        assert_eq!(jit.assign_profile_id(s1), Some(a));
        assert_eq!(jit.profiled_alloc_sites(), 2);
    }

    #[test]
    fn enable_disable_call_profiling_toggles_the_cell() {
        let (p, hot, _tiny, _big, _cs_tiny, cs_big) = sample_program();
        let mut jit = JitState::new(&p, JitConfig { compile_threshold: 1, ..Default::default() });
        jit.note_entry(&p, hot, &mut rng());
        jit.enable_call_profiling(cs_big);
        assert_eq!(jit.call_site(cs_big).delta, jit.call_site(cs_big).reserved_delta);
        assert_eq!(jit.enabled_call_sites(), 1);
        jit.disable_call_profiling(cs_big);
        assert_eq!(jit.call_site(cs_big).delta, 0);
        assert_eq!(jit.enabled_call_sites(), 0);
    }

    #[test]
    fn enabling_an_inlined_site_is_a_no_op() {
        let (p, hot, _tiny, _big, cs_tiny, _cs_big) = sample_program();
        let mut jit = JitState::new(&p, JitConfig { compile_threshold: 1, ..Default::default() });
        jit.note_entry(&p, hot, &mut rng());
        jit.enable_call_profiling(cs_tiny);
        assert_eq!(jit.call_site(cs_tiny).delta, 0);
    }

    #[test]
    fn exhausted_id_space_saturates_and_counts_refusals() {
        let mut b = ProgramBuilder::new();
        let m = b.method("x.M::f", 100, false);
        let s1 = b.alloc_site(m, 1);
        let s2 = b.alloc_site(m, 2);
        let p = b.build();
        let mut jit = JitState::new(&p, JitConfig::default());
        let a = jit.assign_profile_id(s1).unwrap();
        jit.force_profile_id_exhaustion();
        assert!(jit.profile_ids_exhausted());
        // New sites are refused (no wrap, no aliasing)...
        assert_eq!(jit.assign_profile_id(s2), None);
        assert_eq!(jit.assign_profile_id(s2), None);
        assert_eq!(jit.profile_id_overflows(), 2);
        // ...while already-assigned ids keep their meaning.
        assert_eq!(jit.assign_profile_id(s1), Some(a));
    }

    #[test]
    fn alloc_profiling_gate_toggles() {
        let (p, ..) = sample_program();
        let mut jit = JitState::new(&p, JitConfig::default());
        assert!(jit.alloc_profiling_enabled());
        jit.set_alloc_profiling(false);
        assert!(!jit.alloc_profiling_enabled());
        jit.set_alloc_profiling(true);
        assert!(jit.alloc_profiling_enabled());
    }

    #[test]
    fn profilable_sites_require_compiled_caller() {
        let (p, hot, _tiny, _big, _cs_tiny, cs_big) = sample_program();
        let mut jit = JitState::new(&p, JitConfig { compile_threshold: 2, ..Default::default() });
        let mut r = rng();
        assert!(jit.profilable_call_sites(&p).is_empty());
        jit.note_entry(&p, hot, &mut r);
        jit.note_entry(&p, hot, &mut r);
        assert_eq!(jit.profilable_call_sites(&p), vec![cs_big]);
    }
}
