//! Lock-free pretenuring-decision snapshots.
//!
//! ROLP's inference runs at safepoints, but its *decisions* are consumed
//! on the allocation fast path — the one place the paper insists must
//! stay at "negligible overhead" (§3.2, §8.3). This module gives the
//! decisions the same shape HotSpot would: an immutable, versioned
//! [`DecisionTable`] (a flat byte array indexed by the decision row key)
//! published once per inference epoch via an atomic pointer swap on a
//! [`DecisionStore`], and read with a single `Acquire` load plus one
//! bounds-checked array index. No hashing, no locks, no reference-count
//! traffic on the hot path.
//!
//! Publication protocol:
//!
//! 1. The profiler builds a fresh `DecisionTable` from its working
//!    estimates (safepoint-side, no readers racing the build).
//! 2. [`DecisionStore::publish`] swaps the current-table pointer with
//!    `Release` ordering. Every table ever published is retained in an
//!    epoch history (bounded: one entry per inference epoch), so a
//!    reader holding a pointer from *any* epoch still dereferences valid
//!    memory — the immutable-snapshot analogue of an RCU grace period.
//! 3. Readers ([`DecisionStore::load`]) take one `Acquire` load and
//!    index the snapshot. A mutator holding an older [`Arc`] snapshot
//!    (via [`DecisionStore::snapshot`]) across a publish keeps reading
//!    its consistent old version; the next load observes the new one.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

#[cfg(feature = "loom")]
use loom::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
#[cfg(not(feature = "loom"))]
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

/// Slot value meaning "no decision for this site".
const NO_DECISION: u8 = 0;
/// Slot value meaning "site is conflicted/expanded — consult the
/// per-stack-state block" (never a valid `gen + 1`, which is ≤ 16).
const EXPANDED: u8 = 0xFF;
/// Bit set on a slot whose decision came from an imported offline
/// profile. The allocation fast path diverts a small deterministic
/// sample of a flagged context's allocations to the young generation as
/// *canaries*: a pretenured context produces no young survivals, so
/// without the sample the profiler would have no live evidence to
/// confirm or refute the imported prior. Plain `gen + 1` encodings are
/// ≤ 16, so the bit never collides with them or with [`EXPANDED`].
const CANARY_FLAG: u8 = 0x40;
/// One in this many allocations of a canary-flagged context stays
/// young. Small enough to keep the imported row's pretenuring benefit,
/// large enough that every inference epoch of a hot context sees
/// multiple canaries.
pub const CANARY_STRIDE: u32 = 64;

/// An immutable, versioned snapshot of the profiler's pretenuring
/// decisions, indexed by decision row key (site id in the high half,
/// thread stack state in the low half — see `rolp::context`).
///
/// Layout: one byte per site id (`0` = none, `gen + 1` = pretenure to
/// `gen`, a sentinel for conflicted sites), plus a dense per-stack-state
/// block for each conflicted site. The common case — unconflicted site —
/// resolves with a single bounds-checked index into the site array.
pub struct DecisionTable {
    version: u64,
    site_slots: Box<[u8]>,
    site_mask: u16,
    /// Dense per-tss decision blocks for expanded (conflicted) sites.
    expanded: BTreeMap<u16, Box<[u8]>>,
    tss_mask: u16,
    decisions: u32,
    changed_rows: u32,
}

impl fmt::Debug for DecisionTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecisionTable")
            .field("version", &self.version)
            .field("decisions", &self.decisions)
            .field("changed_rows", &self.changed_rows)
            .field("expanded_sites", &self.expanded.len())
            .finish()
    }
}

impl DecisionTable {
    /// The empty version-0 table every store starts from (full-scale
    /// geometry: 2^16 site slots, 64 KB).
    pub fn empty() -> Self {
        Self::empty_with_geometry(1 << 16, 1 << 16)
    }

    /// An empty table with explicit power-of-two slot counts (scaled-down
    /// tests alias ids into the slots by masking, like the OLD table).
    pub fn empty_with_geometry(site_slots: usize, tss_slots: usize) -> Self {
        assert!(site_slots.is_power_of_two() && site_slots <= 1 << 16);
        assert!(tss_slots.is_power_of_two() && tss_slots <= 1 << 16);
        DecisionTable {
            version: 0,
            site_slots: vec![NO_DECISION; site_slots].into_boxed_slice(),
            site_mask: (site_slots - 1) as u16,
            expanded: BTreeMap::new(),
            tss_mask: (tss_slots - 1) as u16,
            decisions: 0,
            changed_rows: 0,
        }
    }

    /// Builds the next version from the profiler's working estimates.
    ///
    /// `rows` maps decision row keys to target generations: for an
    /// unconflicted site the key is `site << 16` (stack states alias into
    /// it), for a site in `expanded_sites` the key carries the full
    /// context. `prev` is the currently published table; the new version
    /// is `prev.version() + 1` and `changed_rows` counts the row keys
    /// whose resolved decision differs from `prev`.
    pub fn next_from(
        prev: &DecisionTable,
        rows: &BTreeMap<u32, u8>,
        expanded_sites: impl IntoIterator<Item = u16>,
    ) -> Self {
        Self::next_from_blended(prev, rows, expanded_sites, |_| false)
    }

    /// [`next_from`](Self::next_from) with a canary predicate: row keys
    /// for which `is_canary` returns true are flagged so the allocation
    /// fast path ([`advise_for_alloc`](Self::advise_for_alloc)) samples
    /// them — the blend machinery marks imported-profile rows this way.
    pub fn next_from_blended(
        prev: &DecisionTable,
        rows: &BTreeMap<u32, u8>,
        expanded_sites: impl IntoIterator<Item = u16>,
        is_canary: impl Fn(u32) -> bool,
    ) -> Self {
        let mut table = DecisionTable {
            version: prev.version + 1,
            site_slots: vec![NO_DECISION; prev.site_slots.len()].into_boxed_slice(),
            site_mask: prev.site_mask,
            expanded: BTreeMap::new(),
            tss_mask: prev.tss_mask,
            decisions: 0,
            changed_rows: 0,
        };
        for site in expanded_sites {
            let site = site & table.site_mask;
            table.site_slots[site as usize] = EXPANDED;
            table
                .expanded
                .entry(site)
                .or_insert_with(|| vec![NO_DECISION; (table.tss_mask as usize) + 1].into());
        }
        for (&key, &gen) in rows {
            let site = ((key >> 16) as u16) & table.site_mask;
            let mut encoded = gen.min(15) + 1;
            if is_canary(key) {
                encoded |= CANARY_FLAG;
            }
            match table.expanded.get_mut(&site) {
                Some(block) => {
                    let tss = ((key & 0xFFFF) as u16 & table.tss_mask) as usize;
                    if block[tss] == NO_DECISION {
                        table.decisions += 1;
                    }
                    block[tss] = encoded;
                }
                None => {
                    if table.site_slots[site as usize] == NO_DECISION {
                        table.decisions += 1;
                    }
                    table.site_slots[site as usize] = encoded;
                }
            }
        }
        // Changed rows: every key either table resolves, compared through
        // the public read path so expansion transitions count too.
        let mut keys: Vec<u32> = rows.keys().copied().collect();
        keys.extend(prev.iter().map(|(k, _)| k));
        keys.sort_unstable();
        keys.dedup();
        table.changed_rows =
            keys.iter().filter(|&&k| table.advise(k) != prev.advise(k)).count() as u32;
        table
    }

    /// Resolves a pretenuring decision for an allocation context: one
    /// bounds-checked index into the site array; conflicted (expanded)
    /// sites — rare by construction — take one more into their block.
    #[inline]
    pub fn advise(&self, context: u32) -> Option<u8> {
        let site = ((context >> 16) as u16) & self.site_mask;
        match self.site_slots[site as usize] {
            NO_DECISION => None,
            EXPANDED => self.advise_expanded(site, context),
            encoded => Some((encoded & !CANARY_FLAG) - 1),
        }
    }

    /// [`advise`](Self::advise) for the allocation fast path: identical,
    /// except that a canary-flagged (imported-profile) row answers `None`
    /// — allocate young — for one in [`CANARY_STRIDE`] allocations, keyed
    /// off the allocation's identity-hash draw `tick`. The diverted
    /// objects age through the young generation like any other, feeding
    /// the survivor-tracking evidence the blend decay judges the
    /// imported prior by.
    #[inline]
    pub fn advise_for_alloc(&self, context: u32, tick: u32) -> Option<u8> {
        Self::decode_slot(self.resolve_slot(context), tick)
    }

    /// The raw encoded slot byte for `context` ([`NO_DECISION`] when the
    /// table holds nothing for it) — the context-dependent, cacheable
    /// half of [`advise_for_alloc`](Self::advise_for_alloc). The byte is
    /// what a [`DecisionCache`] stores, so canary rows keep their flag
    /// and sample per allocation even when served from the cache.
    #[inline]
    pub fn resolve_slot(&self, context: u32) -> u8 {
        let site = ((context >> 16) as u16) & self.site_mask;
        match self.site_slots[site as usize] {
            EXPANDED => match self.expanded.get(&site) {
                Some(block) => block[((context & 0xFFFF) as u16 & self.tss_mask) as usize],
                None => NO_DECISION,
            },
            e => e,
        }
    }

    /// Decodes an encoded slot byte against the allocation's
    /// identity-hash draw `tick` — the per-allocation half of
    /// [`advise_for_alloc`](Self::advise_for_alloc), shared by the direct
    /// and micro-cached paths so both sample canaries bit-identically.
    #[inline]
    pub fn decode_slot(encoded: u8, tick: u32) -> Option<u8> {
        if encoded == NO_DECISION {
            return None;
        }
        if encoded & CANARY_FLAG != 0 && tick.is_multiple_of(CANARY_STRIDE) {
            return None;
        }
        Some((encoded & !CANARY_FLAG) - 1)
    }

    /// True when the context resolves to a canary-flagged (imported)
    /// row.
    pub fn is_canary(&self, context: u32) -> bool {
        let site = ((context >> 16) as u16) & self.site_mask;
        let encoded = match self.site_slots[site as usize] {
            NO_DECISION => return false,
            EXPANDED => {
                let Some(block) = self.expanded.get(&site) else { return false };
                block[((context & 0xFFFF) as u16 & self.tss_mask) as usize]
            }
            e => e,
        };
        encoded != NO_DECISION && encoded & CANARY_FLAG != 0
    }

    #[cold]
    fn advise_expanded(&self, site: u16, context: u32) -> Option<u8> {
        let block = self.expanded.get(&site)?;
        match block[((context & 0xFFFF) as u16 & self.tss_mask) as usize] {
            NO_DECISION => None,
            encoded => Some((encoded & !CANARY_FLAG) - 1),
        }
    }

    /// The snapshot's version (0 = the initial empty table).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Active decisions in this snapshot.
    pub fn len(&self) -> usize {
        self.decisions as usize
    }

    /// True when the snapshot holds no decisions.
    pub fn is_empty(&self) -> bool {
        self.decisions == 0
    }

    /// Row keys whose resolved decision differs from the previous
    /// version (0 for the initial table).
    pub fn changed_rows(&self) -> u32 {
        self.changed_rows
    }

    /// Iterates `(row key, generation)` pairs, sorted by row key.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u8)> + '_ {
        let base = self.site_slots.iter().enumerate().filter_map(|(site, &slot)| match slot {
            NO_DECISION | EXPANDED => None,
            encoded => Some(((site as u32) << 16, (encoded & !CANARY_FLAG) - 1)),
        });
        let expanded = self.expanded.iter().flat_map(|(&site, block)| {
            block.iter().enumerate().filter_map(move |(tss, &slot)| match slot {
                NO_DECISION => None,
                encoded => Some((((site as u32) << 16) | tss as u32, (encoded & !CANARY_FLAG) - 1)),
            })
        });
        let mut all: Vec<(u32, u8)> = base.chain(expanded).collect();
        all.sort_unstable_by_key(|&(k, _)| k);
        all.into_iter()
    }

    /// FNV-1a digest of the snapshot's observable decision state: every
    /// `(row key, generation, canary)` triple in row-key order. Two
    /// snapshots advise identically for every context iff their digests
    /// match, so bit-identity claims across table backends (sequential vs.
    /// sharded publication) reduce to one `u64` comparison.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for (key, generation) in self.iter() {
            for b in key.to_le_bytes() {
                mix(b);
            }
            mix(generation);
            mix(u8::from(self.is_canary(key)));
        }
        h
    }
}

/// The publication point for [`DecisionTable`] snapshots.
///
/// `load` is the allocation fast path: one `Acquire` pointer load, no
/// locks, no reference-count traffic. `publish` (safepoint-side, rare)
/// swaps the pointer and retains the new table in the epoch history so
/// earlier pointers stay dereferenceable for the store's lifetime.
pub struct DecisionStore {
    current: AtomicPtr<DecisionTable>,
    /// The latest published version, stored *after* the pointer swap.
    /// Per-thread [`DecisionCache`]s validate entries against this one
    /// word instead of dereferencing the table: because the hint trails
    /// the pointer, a hint equal to a cached entry's version proves the
    /// entry came from the current table or its immediate predecessor
    /// mid-publish — never anything older (the micro-cache's staleness
    /// bound, model-checked in `tests/loom_microcache.rs`).
    version_hint: AtomicU64,
    /// Every published snapshot, oldest first. One entry per inference
    /// epoch — bounded by run length, and what makes `load`'s borrowed
    /// return sound.
    history: Mutex<Vec<Arc<DecisionTable>>>,
}

impl DecisionStore {
    /// A store holding the empty version-0 table.
    pub fn new() -> Self {
        Self::with_initial(DecisionTable::empty())
    }

    /// A store seeded with a specific initial table (scaled geometries).
    pub fn with_initial(table: DecisionTable) -> Self {
        let version = table.version();
        let initial = Arc::new(table);
        let ptr = Arc::as_ptr(&initial) as *mut DecisionTable;
        DecisionStore {
            current: AtomicPtr::new(ptr),
            version_hint: AtomicU64::new(version),
            history: Mutex::new(vec![initial]),
        }
    }

    /// The current snapshot — the lock-free read side.
    #[inline]
    pub fn load(&self) -> &DecisionTable {
        let ptr = self.current.load(Ordering::Acquire);
        // SAFETY: `ptr` was derived from an `Arc<DecisionTable>` that is
        // retained in `history` until the store itself drops, so it is
        // valid for `&self`'s lifetime; the pointee is immutable after
        // publication.
        unsafe { &*ptr }
    }

    /// An owned handle to the current snapshot. A mutator may hold this
    /// across publishes and keep reading a consistent (old) version.
    pub fn snapshot(&self) -> Arc<DecisionTable> {
        let ptr = self.current.load(Ordering::Acquire);
        let history = self.history.lock().expect("decision history poisoned");
        history
            .iter()
            .rev()
            .find(|t| std::ptr::eq(Arc::as_ptr(t), ptr))
            .cloned()
            .unwrap_or_else(|| history.last().expect("history never empty").clone())
    }

    /// Publishes `table` as the new current snapshot (safepoint-side).
    /// Returns its version.
    pub fn publish(&self, table: DecisionTable) -> u64 {
        let version = table.version();
        let arc = Arc::new(table);
        let ptr = Arc::as_ptr(&arc) as *mut DecisionTable;
        // Retain before the swap so no reader can observe a pointer whose
        // backing allocation is not yet anchored in the history.
        self.history.lock().expect("decision history poisoned").push(arc);
        self.current.store(ptr, Ordering::Release);
        // The hint trails the pointer: a cache hit validated against it
        // can therefore never be newer than the current table, and never
        // older than its immediate predecessor.
        self.version_hint.store(version, Ordering::Release);
        version
    }

    /// The micro-cache validation word (see the field docs). Cheaper than
    /// `load().version()`: no pointer dereference, so the common repeat-
    /// site allocation touches exactly one shared cache line.
    #[inline]
    pub fn version_hint(&self) -> u64 {
        self.version_hint.load(Ordering::Acquire)
    }

    /// The current snapshot's version.
    pub fn version(&self) -> u64 {
        self.load().version()
    }

    /// Snapshots published so far (including the initial empty table).
    pub fn epochs(&self) -> usize {
        self.history.lock().expect("decision history poisoned").len()
    }
}

impl Default for DecisionStore {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for DecisionStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecisionStore")
            .field("version", &self.version())
            .field("decisions", &self.load().len())
            .finish()
    }
}

// SAFETY: published tables are immutable; `current` and the history
// mutex guard all shared mutation.
unsafe impl Send for DecisionStore {}
unsafe impl Sync for DecisionStore {}

/// Slots in a [`DecisionCache`] (direct-mapped, power of two).
const MICRO_CACHE_SLOTS: usize = 64;

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    context: u32,
    /// Version of the table the byte was resolved from. Initialized to
    /// `u64::MAX`, which no published table ever carries, so empty slots
    /// can never validate.
    version: u64,
    encoded: u8,
}

/// A per-thread decision micro-cache: the repeat-site allocation fast
/// path. A hit costs one `Acquire` load of the store's version hint and
/// one private array index — it skips the table-pointer dereference and
/// the site/expanded-block walk entirely. Entries are validated against
/// the hint, so a snapshot publish invalidates the whole cache implicitly
/// (the hint moves) without the publisher knowing any thread's cache
/// exists.
///
/// The cached byte is the *encoded* slot ([`DecisionTable::resolve_slot`]);
/// decoding (canary sampling included) runs per allocation through the
/// same [`DecisionTable::decode_slot`] as the uncached path, which is
/// what makes hit and miss answers bit-identical for the same
/// `(table, context, tick)`.
#[derive(Debug, Clone)]
pub struct DecisionCache {
    entries: [CacheEntry; MICRO_CACHE_SLOTS],
    hits: u64,
    misses: u64,
}

impl DecisionCache {
    /// An empty cache (every slot invalid).
    pub fn new() -> Self {
        DecisionCache {
            entries: [CacheEntry { context: 0, version: u64::MAX, encoded: 0 }; MICRO_CACHE_SLOTS],
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn slot_of(context: u32) -> usize {
        // Fold the site id onto the stack state so neither alone decides
        // the slot (hot sites differ in their high half, hot stacks in
        // their low half).
        ((context >> 16) ^ context) as usize & (MICRO_CACHE_SLOTS - 1)
    }

    /// [`DecisionTable::advise_for_alloc`] through the cache: identical
    /// answers, one shared `Acquire` load instead of two on a hit.
    #[inline]
    pub fn advise_for_alloc(
        &mut self,
        store: &DecisionStore,
        context: u32,
        tick: u32,
    ) -> Option<u8> {
        let hint = store.version_hint();
        let entry = &mut self.entries[Self::slot_of(context)];
        if entry.context == context && entry.version == hint {
            self.hits += 1;
            return DecisionTable::decode_slot(entry.encoded, tick);
        }
        self.misses += 1;
        let table = store.load();
        let encoded = table.resolve_slot(context);
        // Tag with the version the byte actually came from. If a publish
        // raced between the hint read and the load, this is newer than
        // `hint` and the entry stays dormant until the hint catches up —
        // it can never validate against an *older* hint, because the hint
        // never goes backwards.
        *entry = CacheEntry { context, version: table.version(), encoded };
        DecisionTable::decode_slot(encoded, tick)
    }

    /// Drains the hit/miss counters (flushed to telemetry at safepoints).
    pub fn take_counters(&mut self) -> (u64, u64) {
        let c = (self.hits, self.misses);
        self.hits = 0;
        self.misses = 0;
        c
    }
}

impl Default for DecisionCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    fn rows(pairs: &[(u32, u8)]) -> BTreeMap<u32, u8> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn empty_table_advises_nothing() {
        let t = DecisionTable::empty_with_geometry(64, 16);
        assert_eq!(t.version(), 0);
        assert!(t.is_empty());
        assert_eq!(t.advise(5 << 16), None);
    }

    #[test]
    fn digest_tracks_observable_decisions_only() {
        let prev = DecisionTable::empty_with_geometry(64, 16);
        let a = DecisionTable::next_from(&prev, &rows(&[(5 << 16, 3), (9 << 16, 1)]), []);
        let b = DecisionTable::next_from(&prev, &rows(&[(9 << 16, 1), (5 << 16, 3)]), []);
        assert_eq!(a.digest(), b.digest(), "same decisions, same digest");
        let c = DecisionTable::next_from(&prev, &rows(&[(5 << 16, 4), (9 << 16, 1)]), []);
        assert_ne!(a.digest(), c.digest(), "a changed generation changes the digest");
        let canary = DecisionTable::next_from_blended(&prev, &rows(&[(5 << 16, 3)]), [], |_| true);
        let plain = DecisionTable::next_from(&prev, &rows(&[(5 << 16, 3)]), []);
        assert_ne!(canary.digest(), plain.digest(), "canary status is observable");
        assert_eq!(DecisionTable::empty().digest(), DecisionTable::empty().digest());
    }

    #[test]
    fn site_decisions_alias_all_stack_states() {
        let prev = DecisionTable::empty_with_geometry(64, 16);
        let t = DecisionTable::next_from(&prev, &rows(&[(5 << 16, 3)]), []);
        assert_eq!(t.version(), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.advise(5 << 16), Some(3));
        assert_eq!(t.advise((5 << 16) | 7), Some(3), "tss aliases into the site row");
        assert_eq!(t.advise(6 << 16), None);
    }

    #[test]
    fn expanded_sites_split_stack_states() {
        let prev = DecisionTable::empty_with_geometry(64, 16);
        let t = DecisionTable::next_from(&prev, &rows(&[((5 << 16) | 2, 7)]), [5u16]);
        assert_eq!(t.advise((5 << 16) | 2), Some(7));
        assert_eq!(t.advise((5 << 16) | 3), None, "sibling stack state undecided");
        assert_eq!(t.advise(5 << 16), None);
    }

    #[test]
    fn generation_zero_and_fifteen_are_representable() {
        let prev = DecisionTable::empty_with_geometry(64, 16);
        let t = DecisionTable::next_from(&prev, &rows(&[(1 << 16, 0), (2 << 16, 15)]), []);
        assert_eq!(t.advise(1 << 16), Some(0));
        assert_eq!(t.advise(2 << 16), Some(15));
    }

    #[test]
    fn changed_rows_counts_differences_from_previous_version() {
        let v0 = DecisionTable::empty_with_geometry(64, 16);
        let v1 = DecisionTable::next_from(&v0, &rows(&[(1 << 16, 2), (2 << 16, 5)]), []);
        assert_eq!(v1.changed_rows(), 2);
        // One key keeps its value, one changes, one disappears, one is new.
        let v2 = DecisionTable::next_from(&v1, &rows(&[(1 << 16, 2), (3 << 16, 4)]), []);
        assert_eq!(v2.changed_rows(), 2, "2<<16 dropped, 3<<16 added, 1<<16 unchanged");
        assert_eq!(v2.version(), 2);
    }

    #[test]
    fn iter_reports_sorted_row_keys() {
        let v0 = DecisionTable::empty_with_geometry(64, 16);
        let t = DecisionTable::next_from(&v0, &rows(&[((5 << 16) | 3, 7), (2 << 16, 1)]), [5u16]);
        let all: Vec<(u32, u8)> = t.iter().collect();
        assert_eq!(all, vec![(2 << 16, 1), ((5 << 16) | 3, 7)]);
    }

    #[test]
    fn canary_rows_sample_one_in_stride_to_young() {
        let prev = DecisionTable::empty_with_geometry(64, 16);
        let t = DecisionTable::next_from_blended(
            &prev,
            &rows(&[(5 << 16, 3), (6 << 16, 7)]),
            [],
            |key| key == 5 << 16,
        );
        // Plain reads mask the flag: both rows advise their generation.
        assert_eq!(t.advise(5 << 16), Some(3));
        assert_eq!(t.advise(6 << 16), Some(7));
        assert!(t.is_canary(5 << 16));
        assert!(!t.is_canary(6 << 16));
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(5 << 16, 3), (6 << 16, 7)]);

        // The alloc path diverts the flagged row on stride ticks only.
        assert_eq!(t.advise_for_alloc(5 << 16, 0), None, "stride tick goes young");
        assert_eq!(t.advise_for_alloc(5 << 16, CANARY_STRIDE), None);
        assert_eq!(t.advise_for_alloc(5 << 16, 1), Some(3));
        assert_eq!(t.advise_for_alloc(5 << 16, CANARY_STRIDE - 1), Some(3));
        // Unflagged rows never sample.
        assert_eq!(t.advise_for_alloc(6 << 16, 0), Some(7));

        // Changed-rows accounting compares masked decisions: republishing
        // the same generations with the same flags is a no-op publish.
        let t2 =
            DecisionTable::next_from_blended(&t, &rows(&[(5 << 16, 3), (6 << 16, 7)]), [], |key| {
                key == 5 << 16
            });
        assert_eq!(t2.changed_rows(), 0);
    }

    #[test]
    fn canary_flag_reaches_expanded_blocks() {
        let prev = DecisionTable::empty_with_geometry(64, 16);
        let key = (5u32 << 16) | 2;
        let t = DecisionTable::next_from_blended(&prev, &rows(&[(key, 7)]), [5u16], |k| k == key);
        assert_eq!(t.advise(key), Some(7));
        assert!(t.is_canary(key));
        assert_eq!(t.advise_for_alloc(key, 0), None);
        assert_eq!(t.advise_for_alloc(key, 3), Some(7));
        assert_eq!(t.advise_for_alloc((5 << 16) | 3, 0), None, "sibling tss undecided");
    }

    #[test]
    fn resolve_and_decode_compose_to_advise_for_alloc() {
        let prev = DecisionTable::empty_with_geometry(64, 16);
        let t = DecisionTable::next_from_blended(
            &prev,
            &rows(&[(5 << 16, 3), ((7 << 16) | 2, 9)]),
            [7u16],
            |key| key == 5 << 16,
        );
        for context in [5 << 16, (5 << 16) | 1, (7 << 16) | 2, (7 << 16) | 3, 6 << 16] {
            for tick in [0, 1, CANARY_STRIDE - 1, CANARY_STRIDE, 12345] {
                assert_eq!(
                    DecisionTable::decode_slot(t.resolve_slot(context), tick),
                    t.advise_for_alloc(context, tick),
                    "context {context:#x} tick {tick}"
                );
            }
        }
    }

    #[test]
    fn micro_cache_answers_match_the_direct_path() {
        let store = DecisionStore::with_initial(DecisionTable::empty_with_geometry(64, 16));
        let v1 = DecisionTable::next_from_blended(
            store.load(),
            &rows(&[(5 << 16, 3), (9 << 16, 1)]),
            [],
            |key| key == 5 << 16,
        );
        store.publish(v1);
        let mut cache = DecisionCache::new();
        // Repeat sites: first read misses, repeats hit, answers identical
        // — including canary ticks served from the cache.
        for tick in 0..200u32 {
            for context in [5 << 16, 9 << 16, 3 << 16] {
                assert_eq!(
                    cache.advise_for_alloc(&store, context, tick),
                    store.load().advise_for_alloc(context, tick),
                    "context {context:#x} tick {tick}"
                );
            }
        }
        let (hits, misses) = cache.take_counters();
        assert_eq!(hits + misses, 600);
        assert_eq!(misses, 3, "one compulsory miss per distinct context");
        assert_eq!(cache.take_counters(), (0, 0), "counters drained");
    }

    #[test]
    fn publish_invalidates_micro_cache_entries() {
        let store = DecisionStore::with_initial(DecisionTable::empty_with_geometry(64, 16));
        let mut cache = DecisionCache::new();
        let context = 4 << 16;
        assert_eq!(cache.advise_for_alloc(&store, context, 1), None);
        let v1 = DecisionTable::next_from(store.load(), &rows(&[(context, 11)]), []);
        store.publish(v1);
        // The stale entry must not answer: the hint moved.
        assert_eq!(cache.advise_for_alloc(&store, context, 1), Some(11));
        let (hits, misses) = cache.take_counters();
        assert_eq!((hits, misses), (0, 2), "both reads crossed a version");
        // And after the reload the new version is served from the cache.
        assert_eq!(cache.advise_for_alloc(&store, context, 1), Some(11));
        assert_eq!(cache.take_counters(), (1, 0));
    }

    #[test]
    fn store_publish_bumps_version_and_load_sees_it() {
        let store = DecisionStore::with_initial(DecisionTable::empty_with_geometry(64, 16));
        assert_eq!(store.version(), 0);
        let next = DecisionTable::next_from(store.load(), &rows(&[(9 << 16, 4)]), []);
        assert_eq!(store.publish(next), 1);
        assert_eq!(store.version(), 1);
        assert_eq!(store.load().advise(9 << 16), Some(4));
        assert_eq!(store.epochs(), 2);
    }

    #[test]
    fn old_snapshot_stays_consistent_across_a_publish() {
        let store = DecisionStore::with_initial(DecisionTable::empty_with_geometry(64, 16));
        let v1 = DecisionTable::next_from(store.load(), &rows(&[(1 << 16, 2)]), []);
        store.publish(v1);

        // The mutator grabs its epoch snapshot...
        let held = store.snapshot();
        assert_eq!(held.version(), 1);

        // ...a publish lands while it is held...
        let v2 = DecisionTable::next_from(store.load(), &rows(&[(1 << 16, 9)]), []);
        store.publish(v2);

        // ...the held snapshot still reads version-1 decisions, while the
        // next load observes the new version.
        assert_eq!(held.version(), 1);
        assert_eq!(held.advise(1 << 16), Some(2));
        assert_eq!(store.load().version(), 2);
        assert_eq!(store.load().advise(1 << 16), Some(9));
    }

    #[test]
    fn loads_across_threads_see_published_tables() {
        let store = std::sync::Arc::new(DecisionStore::with_initial(
            DecisionTable::empty_with_geometry(64, 16),
        ));
        let reader = {
            let store = std::sync::Arc::clone(&store);
            std::thread::spawn(move || {
                // Spin until the publish is visible; every observed table
                // must be internally consistent (version matches payload).
                loop {
                    let t = store.load();
                    match t.version() {
                        0 => assert_eq!(t.advise(4 << 16), None),
                        v => {
                            assert_eq!(t.advise(4 << 16), Some(11));
                            break v;
                        }
                    }
                    std::thread::yield_now();
                }
            })
        };
        let next = DecisionTable::next_from(store.load(), &rows(&[(4 << 16, 11)]), []);
        store.publish(next);
        assert_eq!(reader.join().expect("reader"), 1);
    }
}
