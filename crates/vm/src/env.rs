//! The shared execution environment.
//!
//! [`VmEnv`] bundles everything a collector or profiler needs access to
//! while the world is stopped: the heap, the simulated clock, metric
//! recorders, the cost model, the static program, the dynamic JIT state,
//! and the guest threads (whose stacks the end-of-GC reconciliation
//! walks).

use std::rc::Rc;
use std::sync::Arc;

use rolp_heap::Heap;
use rolp_metrics::{MemoryTracker, PauseRecorder, SimClock, Throughput};
use rolp_telemetry::{CounterId, GaugeId, Telemetry};
use rolp_trace::{EventKind, TraceRecorder};

use crate::cost::CostModel;
use crate::decisions::DecisionStore;
use crate::jit::{JitConfig, JitState};
use crate::program::Program;
use crate::thread::{MutatorThread, ThreadId};

/// The mutable world state shared between mutator, collector, and
/// profiler.
#[derive(Debug)]
pub struct VmEnv {
    /// The managed heap (owns classes and the root handle table).
    pub heap: Heap,
    /// Simulated time.
    pub clock: SimClock,
    /// Stop-the-world pause record.
    pub pauses: PauseRecorder,
    /// Memory watermarks.
    pub memory: MemoryTracker,
    /// Application throughput.
    pub throughput: Throughput,
    /// The cost model charging simulated time.
    pub cost: CostModel,
    /// The immutable guest program.
    pub program: Rc<Program>,
    /// Dynamic JIT state.
    pub jit: JitState,
    /// Guest threads.
    pub threads: Vec<MutatorThread>,
    /// Structured telemetry flight recorder (disabled by default).
    pub trace: TraceRecorder,
    /// Always-on live metrics plane. Every nanosecond charged through
    /// [`VmEnv::charge`] is attributed to the telemetry's current
    /// bucket; pause and idle time are attributed explicitly at their
    /// clock-advance sites.
    pub telemetry: Telemetry,
    /// Published pretenuring decisions. When set, the allocation fast
    /// path resolves each profiled allocation's target generation with a
    /// single lock-free read of the current [`crate::DecisionTable`]
    /// snapshot (no profiler borrow, no hash lookup).
    pub decisions: Option<Arc<DecisionStore>>,
    /// Routes decision reads through each thread's
    /// [`crate::DecisionCache`] (on by default). Off, every profiled
    /// allocation loads the table — the reference path the differential
    /// suite compares the cached path against.
    pub microcache_enabled: bool,
}

impl VmEnv {
    /// Creates an environment with `num_threads` idle guest threads.
    pub fn new(
        heap: Heap,
        cost: CostModel,
        program: Program,
        jit_config: JitConfig,
        num_threads: u32,
    ) -> Self {
        let program = Rc::new(program);
        let jit = JitState::new(&program, jit_config);
        let threads = (0..num_threads).map(|i| MutatorThread::new(ThreadId(i))).collect();
        VmEnv {
            heap,
            clock: SimClock::new(),
            pauses: PauseRecorder::new(),
            memory: MemoryTracker::new(),
            throughput: Throughput::new(),
            cost,
            program,
            jit,
            threads,
            trace: TraceRecorder::disabled(),
            telemetry: Telemetry::new(),
            decisions: None,
            microcache_enabled: true,
        }
    }

    /// Safepoint entry for the allocation fast path: retires every TLAB
    /// (regions become parsable, frontiers exact) and drains the
    /// per-thread micro-cache counters into telemetry. Collectors call
    /// this at the start of every pause; the runtime calls it once more
    /// at end of run.
    pub fn safepoint_flush_alloc_path(&mut self) {
        self.heap.retire_all_tlabs();
        let (mut hits, mut misses) = (0u64, 0u64);
        for t in &mut self.threads {
            let (h, m) = t.decision_cache.take_counters();
            hits += h;
            misses += m;
        }
        if hits > 0 {
            self.telemetry.bump(CounterId::MicrocacheHits, hits);
        }
        if misses > 0 {
            self.telemetry.bump(CounterId::MicrocacheMisses, misses);
        }
    }

    /// Charges `ns` of mutator time, attributed to the telemetry's
    /// current bucket (see [`Telemetry::span`]).
    #[inline]
    pub fn charge(&mut self, ns: u64) {
        self.clock.advance(ns);
        self.telemetry.on_charge(ns);
    }

    /// Updates the memory watermarks from current heap occupancy.
    pub fn sample_memory(&mut self) {
        self.memory.set_committed(self.heap.committed_bytes());
        self.memory.set_used(self.heap.used_bytes());
        let registry = self.telemetry.registry();
        registry.set_gauge(GaugeId::HeapUsedBytes, self.heap.used_bytes());
        registry.set_gauge(GaugeId::HeapCommittedBytes, self.heap.committed_bytes());
        if self.trace.is_enabled() {
            self.trace.emit_global(
                self.clock.now(),
                EventKind::HeapWatermark {
                    used_bytes: self.heap.used_bytes(),
                    committed_bytes: self.heap.committed_bytes(),
                    free_regions: self.heap.free_regions() as u64,
                    total_regions: self.heap.num_regions() as u64,
                },
            );
        }
    }
}
