//! Guest-program execution engine with JIT simulation for the ROLP
//! reproduction.
//!
//! The paper's profiler lives inside a JVM; this crate is that JVM's
//! execution side, rebuilt as a deterministic simulation:
//!
//! - [`program`] — static method/call-site/allocation-site declarations.
//! - [`jit`] — hotness counters, compilation, inlining, OSR, and the
//!   per-call-site delta cells ROLP toggles.
//! - [`thread`] — guest threads and the 16-bit thread stack state.
//! - [`mutator`] — the [`mutator::MutatorCtx`] guest code runs against,
//!   charging the [`cost::CostModel`] and routing allocations through a
//!   pluggable [`mutator::CollectorApi`].
//! - [`profiler`] — the hook trait ROLP implements.
//! - [`mod@env`] — the world state shared with collectors.

pub mod cost;
pub mod decisions;
pub mod env;
pub mod jit;
pub mod mutator;
pub mod profiler;
pub mod program;
pub mod thread;

pub use cost::CostModel;
pub use decisions::{DecisionCache, DecisionStore, DecisionTable, CANARY_STRIDE};
pub use env::VmEnv;
pub use jit::{JitConfig, JitEvent, JitState};
pub use mutator::{AllocRequest, CollectorApi, GuestException, MutatorCtx, Vm};
pub use profiler::{NullProfiler, VmProfiler};
pub use program::{AllocSiteId, CallSiteId, MethodId, Program, ProgramBuilder};
pub use thread::{Frame, MutatorThread, ThreadId};
