//! Static guest-program structure.
//!
//! A guest program declares its methods, call sites, and allocation sites
//! up front through [`ProgramBuilder`]; the dynamic behaviour is ordinary
//! Rust code driven through `MutatorCtx` (see [`crate::mutator`]). The
//! static declaration is what lets the JIT simulation make the decisions
//! the paper's mechanisms depend on: which methods are hot, which call
//! sites get inlined, which allocation sites receive profiling code, and
//! which package a method belongs to (for ROLP's package filters, §7.3).

/// Index of a method in the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId(pub u32);

/// Index of a static call site (a specific `invoke` bytecode in a specific
/// method).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallSiteId(pub u32);

/// Index of a static allocation site (a specific `new` bytecode in a
/// specific method).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AllocSiteId(pub u32);

/// Declared metadata of one guest method.
#[derive(Debug, Clone)]
pub struct MethodDecl {
    /// Fully qualified name, `"package.sub.Class::method"`. The package is
    /// everything before the last `.` segment preceding `::`.
    pub name: String,
    /// Abstract bytecode size; drives inlining and JIT-compile cost.
    pub bytecode_size: u32,
    /// Whether the JIT may inline calls to this method (paper §7.2.1:
    /// small, control-flow-free methods).
    pub inlineable: bool,
}

impl MethodDecl {
    /// The package part of the method name (empty if unqualified).
    pub fn package(&self) -> &str {
        let class_path = self.name.split("::").next().unwrap_or("");
        match class_path.rfind('.') {
            Some(i) => &class_path[..i],
            None => "",
        }
    }
}

/// Declared metadata of one call site.
#[derive(Debug, Clone)]
pub struct CallSiteDecl {
    /// The method containing the call.
    pub caller: MethodId,
    /// Statically known callee for monomorphic sites; `None` for
    /// polymorphic sites (the target is supplied at call time, and the
    /// JIT never inlines them).
    pub callee: Option<MethodId>,
}

/// Declared metadata of one allocation site.
#[derive(Debug, Clone)]
pub struct AllocSiteDecl {
    /// The method containing the `new`.
    pub method: MethodId,
    /// Abstract bytecode index, for display only.
    pub bci: u32,
}

/// An immutable, fully declared guest program.
#[derive(Debug, Default)]
pub struct Program {
    methods: Vec<MethodDecl>,
    call_sites: Vec<CallSiteDecl>,
    alloc_sites: Vec<AllocSiteDecl>,
    /// Call sites grouped by caller (parallel index to `methods`).
    sites_by_caller: Vec<Vec<CallSiteId>>,
    /// Allocation sites grouped by containing method.
    allocs_by_method: Vec<Vec<AllocSiteId>>,
}

impl Program {
    /// Method metadata.
    pub fn method(&self, id: MethodId) -> &MethodDecl {
        &self.methods[id.0 as usize]
    }

    /// Call-site metadata.
    pub fn call_site(&self, id: CallSiteId) -> &CallSiteDecl {
        &self.call_sites[id.0 as usize]
    }

    /// Allocation-site metadata.
    pub fn alloc_site(&self, id: AllocSiteId) -> &AllocSiteDecl {
        &self.alloc_sites[id.0 as usize]
    }

    /// Number of methods.
    pub fn num_methods(&self) -> usize {
        self.methods.len()
    }

    /// Number of declared call sites.
    pub fn num_call_sites(&self) -> usize {
        self.call_sites.len()
    }

    /// Number of declared allocation sites.
    pub fn num_alloc_sites(&self) -> usize {
        self.alloc_sites.len()
    }

    /// Call sites whose caller is `m`.
    pub fn call_sites_of(&self, m: MethodId) -> &[CallSiteId] {
        &self.sites_by_caller[m.0 as usize]
    }

    /// Allocation sites contained in `m`.
    pub fn alloc_sites_of(&self, m: MethodId) -> &[AllocSiteId] {
        &self.allocs_by_method[m.0 as usize]
    }

    /// Iterates all method ids.
    pub fn methods(&self) -> impl Iterator<Item = MethodId> {
        (0..self.methods.len() as u32).map(MethodId)
    }

    /// Iterates all call-site ids.
    pub fn call_sites(&self) -> impl Iterator<Item = CallSiteId> {
        (0..self.call_sites.len() as u32).map(CallSiteId)
    }

    /// Iterates all allocation-site ids.
    pub fn alloc_sites(&self) -> impl Iterator<Item = AllocSiteId> {
        (0..self.alloc_sites.len() as u32).map(AllocSiteId)
    }
}

/// Builder for [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a method.
    pub fn method(
        &mut self,
        name: impl Into<String>,
        bytecode_size: u32,
        inlineable: bool,
    ) -> MethodId {
        let id = MethodId(self.program.methods.len() as u32);
        self.program.methods.push(MethodDecl { name: name.into(), bytecode_size, inlineable });
        self.program.sites_by_caller.push(Vec::new());
        self.program.allocs_by_method.push(Vec::new());
        id
    }

    /// Declares a monomorphic call site in `caller` targeting `callee`.
    pub fn call_site(&mut self, caller: MethodId, callee: MethodId) -> CallSiteId {
        self.add_call_site(caller, Some(callee))
    }

    /// Declares a polymorphic call site in `caller` (target supplied per
    /// call; never inlined).
    pub fn virtual_call_site(&mut self, caller: MethodId) -> CallSiteId {
        self.add_call_site(caller, None)
    }

    fn add_call_site(&mut self, caller: MethodId, callee: Option<MethodId>) -> CallSiteId {
        let id = CallSiteId(self.program.call_sites.len() as u32);
        self.program.call_sites.push(CallSiteDecl { caller, callee });
        self.program.sites_by_caller[caller.0 as usize].push(id);
        id
    }

    /// Declares an allocation site in `method` at bytecode index `bci`.
    pub fn alloc_site(&mut self, method: MethodId, bci: u32) -> AllocSiteId {
        let id = AllocSiteId(self.program.alloc_sites.len() as u32);
        self.program.alloc_sites.push(AllocSiteDecl { method, bci });
        self.program.allocs_by_method[method.0 as usize].push(id);
        id
    }

    /// Finalizes the program.
    pub fn build(self) -> Program {
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_wires_indices() {
        let mut b = ProgramBuilder::new();
        let main = b.method("app.Main::run", 200, false);
        let helper = b.method("app.util.Buf::alloc", 12, true);
        let cs = b.call_site(main, helper);
        let vs = b.virtual_call_site(main);
        let s1 = b.alloc_site(helper, 3);
        let s2 = b.alloc_site(main, 40);
        let p = b.build();

        assert_eq!(p.num_methods(), 2);
        assert_eq!(p.call_sites_of(main), &[cs, vs]);
        assert!(p.call_sites_of(helper).is_empty());
        assert_eq!(p.alloc_sites_of(helper), &[s1]);
        assert_eq!(p.alloc_sites_of(main), &[s2]);
        assert_eq!(p.call_site(cs).callee, Some(helper));
        assert_eq!(p.call_site(vs).callee, None);
        assert_eq!(p.alloc_site(s1).bci, 3);
    }

    #[test]
    fn package_extraction() {
        let m = MethodDecl { name: "a.b.C::m".into(), bytecode_size: 1, inlineable: false };
        assert_eq!(m.package(), "a.b");
        let m2 = MethodDecl { name: "C::m".into(), bytecode_size: 1, inlineable: false };
        assert_eq!(m2.package(), "");
        let m3 = MethodDecl {
            name: "cassandra.db.Memtable::put".into(),
            bytecode_size: 1,
            inlineable: false,
        };
        assert_eq!(m3.package(), "cassandra.db");
    }
}
