//! Guest execution: the mutator context and the collector interface.
//!
//! Guest programs run as Rust closures driven through [`MutatorCtx`], which
//! charges the cost model, maintains the JIT simulation (hotness counters,
//! inlining, OSR), applies the thread-stack-state profiling instructions
//! around non-inlined calls in compiled code, and routes allocations
//! through the pluggable collector.
//!
//! The rules mirror HotSpot + ROLP:
//!
//! - Profiling code exists only in *compiled* methods (§3.2).
//! - Call-site profiling executes only when the site's delta cell is
//!   nonzero (the fast `test`/`je` branch otherwise, §3.2.4).
//! - Inlined call sites carry no profiling code at all (§7.2.1).
//! - Exits re-read the *current* delta, so toggling profiling mid-call or
//!   OSR-compiling a caller corrupts the TSS until reconciliation
//!   (§7.2.3) — faithfully reproduced, not papered over.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rolp_heap::{ClassId, Handle, ObjectHeader, ObjectRef};
use rolp_telemetry::{Bucket, CounterId, HistId};

use crate::env::VmEnv;
use crate::jit::JitEvent;
use crate::profiler::VmProfiler;
use crate::program::{AllocSiteId, CallSiteId, MethodId};
use crate::thread::ThreadId;

/// An allocation request handed to the collector.
#[derive(Debug, Clone, Copy)]
pub struct AllocRequest {
    /// Guest class.
    pub class: ClassId,
    /// Number of reference fields.
    pub ref_words: u16,
    /// Number of opaque data words.
    pub data_words: u32,
    /// Pre-built header (allocation context already installed when the
    /// site is profiled).
    pub header: ObjectHeader,
    /// The profiler's allocation context, if the site was profiled
    /// (collectors pass it to the pretenuring advisor).
    pub context: Option<u32>,
    /// NG2C-style hand annotation: the target dynamic generation
    /// (`Some(0)` forces young; paper §7.1). `None` = no annotation.
    pub manual_gen: Option<u8>,
    /// ROLP's published advice for `context`, resolved lock-free by the
    /// allocation fast path from the current
    /// [`crate::DecisionTable`] snapshot. Lower priority than
    /// `manual_gen`.
    pub advised_gen: Option<u8>,
}

/// The collector interface the VM allocates through.
///
/// Implementations live in `rolp-gc`; they are free to stop the world
/// (recording pauses in `env.pauses` and advancing `env.clock`) before
/// satisfying the request.
pub trait CollectorApi {
    /// Allocates per `req`, collecting garbage first if necessary.
    ///
    /// # Panics
    ///
    /// Panics if the request cannot be satisfied even after a full
    /// collection (guest `OutOfMemoryError`).
    fn allocate(&mut self, env: &mut VmEnv, req: AllocRequest) -> ObjectRef;

    /// TLAB fast path: satisfies `req` from `thread`'s allocation buffer
    /// when possible, without collecting. `None` falls through to
    /// [`CollectorApi::allocate`] unchanged, so collectors that do not
    /// implement this (the default) behave exactly as before.
    ///
    /// Implementations must preserve the collection schedule: if the
    /// collector's GC-trigger predicate would fire for this allocation,
    /// they return `None` *without* allocating, so the trigger fires in
    /// the slow path at the identical allocation index.
    fn fast_alloc(
        &mut self,
        _env: &mut VmEnv,
        _req: &AllocRequest,
        _thread: u32,
    ) -> Option<ObjectRef> {
        None
    }

    /// Human-readable collector name (for reports).
    fn name(&self) -> &'static str;

    /// Completed GC cycles (the paper's unit of object age).
    fn gc_cycles(&self) -> u64;

    /// Per-reference-load mutator tax (concurrent collectors' read
    /// barrier).
    fn load_barrier_ns(&self) -> u64 {
        0
    }

    /// Per-field-store mutator tax beyond the standard write barrier.
    fn store_barrier_ns(&self) -> u64 {
        0
    }

    /// Per-mille slowdown applied to guest computation (`work`). Models
    /// the pervasive read/write barriers of fully concurrent collectors,
    /// which tax every compiled memory access, not only the explicit
    /// field operations the guest API exposes.
    fn work_tax_permille(&self) -> u64 {
        0
    }
}

/// A guest exception payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuestException {
    /// Free-form discriminator for tests/workloads.
    pub code: u32,
}

/// The assembled virtual machine.
pub struct Vm {
    /// Shared world state.
    pub env: VmEnv,
    /// The installed profiler (ROLP or [`crate::profiler::NullProfiler`]).
    pub profiler: Rc<RefCell<dyn VmProfiler>>,
    /// The installed collector.
    pub collector: Box<dyn CollectorApi>,
    /// Deterministic randomness for JIT identifier assignment.
    pub rng: StdRng,
}

impl Vm {
    /// Assembles a VM.
    pub fn new(
        env: VmEnv,
        profiler: Rc<RefCell<dyn VmProfiler>>,
        collector: Box<dyn CollectorApi>,
        seed: u64,
    ) -> Self {
        Vm { env, profiler, collector, rng: StdRng::seed_from_u64(seed) }
    }

    /// A mutator context bound to `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` does not exist.
    pub fn ctx(&mut self, thread: ThreadId) -> MutatorCtx<'_> {
        assert!((thread.0 as usize) < self.env.threads.len(), "unknown thread");
        MutatorCtx { vm: self, thread }
    }

    fn handle_jit_event(&mut self, thread: ThreadId, event: JitEvent) {
        let (method, osr) = match event {
            JitEvent::Compile(m) => (m, false),
            JitEvent::OsrCompile(m) => (m, true),
        };
        // Charge the compile itself to mutator time (background compiler
        // threads steal cycles from the application on a loaded box).
        let cost = self.env.program.method(method).bytecode_size as u64
            * self.env.cost.jit_compile_per_bytecode_ns;
        {
            let _span = self.env.telemetry.span(Bucket::JitCompile);
            self.env.charge(cost);
        }
        self.env.telemetry.bump(CounterId::JitCompiles, 1);
        self.env.telemetry.record(HistId::JitCompileNs, cost);
        if self.env.trace.is_enabled() {
            self.env.trace.emit_thread(
                thread.0,
                self.env.clock.now(),
                rolp_trace::EventKind::JitCompile { method: method.0, osr },
            );
        }
        let program = Rc::clone(&self.env.program);
        self.profiler.borrow_mut().on_jit_compile(&program, &mut self.env.jit, method);
    }
}

/// Execution facade for one guest thread.
pub struct MutatorCtx<'vm> {
    vm: &'vm mut Vm,
    thread: ThreadId,
}

impl MutatorCtx<'_> {
    /// The bound thread id.
    pub fn thread_id(&self) -> ThreadId {
        self.thread
    }

    /// The shared environment (read-only).
    pub fn env(&self) -> &VmEnv {
        &self.vm.env
    }

    /// Completed GC cycles so far.
    pub fn gc_cycles(&self) -> u64 {
        self.vm.collector.gc_cycles()
    }

    /// Records `n` completed application operations.
    pub fn complete_ops(&mut self, n: u64) {
        self.vm.env.throughput.record(n);
    }

    /// Advances the clock by `ns` of idle time (request pacing / think
    /// time). No work is attributed to any method.
    pub fn idle(&mut self, ns: u64) {
        self.vm.env.clock.advance_idle(ns);
        self.vm.env.telemetry.add(Bucket::Idle, ns);
    }

    // --- Calls ---

    /// Performs a monomorphic call through `site`, executing `f` as the
    /// callee body.
    ///
    /// # Panics
    ///
    /// Panics if `site` was declared polymorphic (use
    /// [`MutatorCtx::call_virtual`]).
    pub fn call<R>(&mut self, site: CallSiteId, f: impl FnOnce(&mut MutatorCtx<'_>) -> R) -> R {
        let callee = self
            .vm
            .env
            .program
            .call_site(site)
            .callee
            .expect("monomorphic call through polymorphic site");
        self.call_impl(site, callee, f)
    }

    /// Performs a polymorphic call through `site` dispatching to `target`.
    pub fn call_virtual<R>(
        &mut self,
        site: CallSiteId,
        target: MethodId,
        f: impl FnOnce(&mut MutatorCtx<'_>) -> R,
    ) -> R {
        debug_assert!(
            self.vm.env.program.call_site(site).callee.is_none(),
            "call_virtual through a monomorphic site"
        );
        self.call_impl(site, target, f)
    }

    /// Performs a call whose body may throw; exception unwinding applies
    /// the paper's §7.2.2 semantics (the exit-side TSS update runs only if
    /// the profiler's rethrow hook is installed).
    pub fn call_fallible<R>(
        &mut self,
        site: CallSiteId,
        f: impl FnOnce(&mut MutatorCtx<'_>) -> Result<R, GuestException>,
    ) -> Result<R, GuestException> {
        let callee = self
            .vm
            .env
            .program
            .call_site(site)
            .callee
            .expect("monomorphic call through polymorphic site");
        let entry = self.enter_call(site, callee);
        let result = f(self);
        match &result {
            Ok(_) => self.exit_call(site, entry, false),
            Err(_) => self.exit_call(site, entry, true),
        }
        result
    }

    fn call_impl<R>(
        &mut self,
        site: CallSiteId,
        callee: MethodId,
        f: impl FnOnce(&mut MutatorCtx<'_>) -> R,
    ) -> R {
        let entry = self.enter_call(site, callee);
        let r = f(self);
        self.exit_call(site, entry, false);
        r
    }

    /// Entry half of a call. Returns whether the site was inlined (frames
    /// are pushed either way; inlined frames never carry deltas).
    fn enter_call(&mut self, site: CallSiteId, callee: MethodId) -> bool {
        let env = &mut self.vm.env;
        let caller = env.program.call_site(site).caller;
        let caller_compiled = env.jit.is_compiled(caller);
        let inlined = caller_compiled && env.jit.call_site(site).inlined;

        // Cost of the call itself.
        let call_cost = if inlined {
            0
        } else if caller_compiled {
            env.cost.call_ns
        } else {
            env.cost.interpreted_call_ns
        };
        env.charge(call_cost);

        // Profiling instructions exist only in compiled, non-inlined call
        // sites — and only when call-profiling code is installed at all.
        let mut added = 0u16;
        if caller_compiled && !inlined && env.jit.config().install_call_profiling {
            let _span = env.telemetry.span(Bucket::MutatorProfiling);
            let delta = env.jit.call_site(site).delta;
            if delta != 0 {
                env.charge(env.cost.profile_call_slow_ns);
                added = delta;
            } else {
                env.charge(env.cost.profile_call_fast_ns);
            }
        }
        self.vm.env.threads[self.thread.0 as usize].push_frame(site, added);

        // Callee hotness: inlined bodies are part of the caller's code and
        // do not bump the callee's own counter.
        if !inlined {
            let program = Rc::clone(&self.vm.env.program);
            if let Some(ev) = self.vm.env.jit.note_entry(&program, callee, &mut self.vm.rng) {
                self.vm.handle_jit_event(self.thread, ev);
            }
        }
        inlined
    }

    /// Exit half of a call.
    fn exit_call(&mut self, site: CallSiteId, inlined: bool, unwinding: bool) {
        let env = &mut self.vm.env;
        let caller = env.program.call_site(site).caller;
        // Re-read compiled state: an OSR compile of the caller mid-call
        // means the exit runs compiled (profiled) code even though the
        // entry did not.
        let caller_compiled = env.jit.is_compiled(caller);
        let site_inlined = inlined && caller_compiled;

        let run_exit_profiling = caller_compiled
            && !site_inlined
            && env.jit.config().install_call_profiling
            && (!unwinding || self.vm.profiler.borrow().exception_hook_installed());

        let env = &mut self.vm.env;
        if run_exit_profiling {
            let _span = env.telemetry.span(Bucket::MutatorProfiling);
            let delta = env.jit.call_site(site).delta;
            if delta != 0 {
                env.charge(env.cost.profile_call_slow_ns);
                env.threads[self.thread.0 as usize].pop_frame(delta);
            } else {
                env.charge(env.cost.profile_call_fast_ns);
                env.threads[self.thread.0 as usize].pop_frame(0);
            }
        } else {
            env.threads[self.thread.0 as usize].pop_frame_skipping_update();
        }
    }

    /// Charges `ops` units of guest computation attributed to the current
    /// method, and feeds the OSR backedge counter.
    pub fn work(&mut self, ops: u64) {
        let current = self.current_method();
        let compiled = current.map(|m| self.vm.env.jit.is_compiled(m)).unwrap_or(true);
        let per_op = if compiled {
            self.vm.env.cost.compiled_op_ns
        } else {
            self.vm.env.cost.interpreted_op_ns
        };
        let base = ops.saturating_mul(per_op);
        let tax = base.saturating_mul(self.vm.collector.work_tax_permille()) / 1_000;
        self.vm.env.charge(base + tax);
        if let Some(m) = current {
            if !compiled {
                let program = Rc::clone(&self.vm.env.program);
                if let Some(ev) = self.vm.env.jit.note_backedges(&program, m, ops, &mut self.vm.rng)
                {
                    self.vm.handle_jit_event(self.thread, ev);
                }
            }
        }
    }

    /// The method whose code is executing for the innermost frame: the
    /// callee — unless the call was inlined, in which case the body *is*
    /// the caller's compiled code and must be costed as such.
    fn current_method(&self) -> Option<MethodId> {
        let t = &self.vm.env.threads[self.thread.0 as usize];
        t.frames.last().map(|f| {
            let decl = self.vm.env.program.call_site(f.call_site);
            let inlined = self.vm.env.jit.is_compiled(decl.caller)
                && self.vm.env.jit.call_site(f.call_site).inlined;
            if inlined {
                decl.caller
            } else {
                // For virtual sites the dispatched target is not tracked
                // in the frame; attribute to the caller.
                decl.callee.unwrap_or(decl.caller)
            }
        })
    }

    // --- Allocation ---

    /// Allocates an object at `site`.
    pub fn alloc(
        &mut self,
        site: AllocSiteId,
        class: ClassId,
        ref_words: u16,
        data_words: u32,
    ) -> Handle {
        self.alloc_impl(site, class, ref_words, data_words, None)
    }

    /// Allocates with an NG2C-style hand annotation naming the target
    /// generation (the "programmer knowledge" baseline).
    pub fn alloc_annotated(
        &mut self,
        site: AllocSiteId,
        class: ClassId,
        ref_words: u16,
        data_words: u32,
        generation: u8,
    ) -> Handle {
        self.alloc_impl(site, class, ref_words, data_words, Some(generation))
    }

    fn alloc_impl(
        &mut self,
        site: AllocSiteId,
        class: ClassId,
        ref_words: u16,
        data_words: u32,
        manual_gen: Option<u8>,
    ) -> Handle {
        let env = &mut self.vm.env;
        let method = env.program.alloc_site(site).method;
        let compiled = env.jit.is_compiled(method);

        let size_words = 2 + ref_words as u64 + data_words as u64;
        let mut cost = env.cost.alloc_ns + size_words * env.cost.alloc_init_word_ns;
        if !compiled {
            cost += env.cost.interpreted_alloc_extra_ns;
        }
        env.charge(cost);

        let hash = env.heap.next_identity_hash();
        let mut header = ObjectHeader::new(hash);
        let mut context = None;

        let mut interpreted_profile = false;
        let profile_id = if !env.jit.alloc_profiling_enabled() {
            // Governor `Off` state: the profiling instructions are patched
            // out, so the fast path is this one branch — no table
            // increment, no context install, no profiling charge.
            None
        } else if compiled {
            env.jit.alloc_site(site).profile_id
        } else if env.jit.config().profile_interpreted {
            // Memento-style ablation: instrument interpreted allocations
            // too (expensive; see `profile_alloc_interpreted_ns`).
            interpreted_profile = true;
            env.jit.assign_profile_id(site)
        } else {
            None
        };
        match profile_id {
            Some(pid) => {
                let tss = env.threads[self.thread.0 as usize].tss;
                let thread = self.thread;
                let ctx_val = self.vm.profiler.borrow_mut().on_alloc(pid, tss, thread);
                let env = &mut self.vm.env;
                {
                    let _span = env.telemetry.span(Bucket::MutatorProfiling);
                    env.charge(if interpreted_profile {
                        env.cost.profile_alloc_interpreted_ns
                    } else {
                        env.cost.profile_alloc_ns
                    });
                }
                env.telemetry.bump(CounterId::ProfiledAllocs, 1);
                header = header.with_allocation_context(ctx_val);
                context = Some(ctx_val);
            }
            None => {
                self.vm.profiler.borrow_mut().on_unprofiled_alloc();
                self.vm.env.telemetry.bump(CounterId::UnprofiledAllocs, 1);
            }
        }

        // Pretenuring fast path. With the micro-cache on (the default), a
        // repeat site costs one `Acquire` load of the store's version
        // hint plus a private array index; a miss — first touch or a
        // fresh snapshot — falls back to the reference path: one atomic
        // snapshot load plus one bounds-checked table index, never a
        // profiler borrow. The identity-hash draw doubles as the
        // canary-sampling tick for imported-profile rows (deterministic,
        // uniform, and identical on both paths).
        let VmEnv { decisions, threads, microcache_enabled, .. } = &mut self.vm.env;
        let advised_gen = match (context, decisions.as_deref()) {
            (Some(ctx), Some(store)) => {
                if *microcache_enabled {
                    threads[self.thread.0 as usize]
                        .decision_cache
                        .advise_for_alloc(store, ctx, hash)
                } else {
                    store.load().advise_for_alloc(ctx, hash)
                }
            }
            _ => None,
        };

        let req =
            AllocRequest { class, ref_words, data_words, header, context, manual_gen, advised_gen };
        let obj = match self.vm.collector.fast_alloc(&mut self.vm.env, &req, self.thread.0) {
            Some(obj) => obj,
            None => self.vm.collector.allocate(&mut self.vm.env, req),
        };
        self.vm.env.heap.handles.create(obj)
    }

    // --- Field access (handle-mediated, GC-safe) ---

    /// Loads reference field `i`; returns a fresh handle (caller releases)
    /// or `None` for null.
    pub fn get_ref(&mut self, h: Handle, i: u16) -> Option<Handle> {
        let env = &mut self.vm.env;
        env.charge(env.cost.field_load_ns + self.vm.collector.load_barrier_ns());
        let obj = env.heap.handles.get(h);
        let v = env.heap.get_ref(obj, i);
        if v.is_null() {
            None
        } else {
            Some(env.heap.handles.create(v))
        }
    }

    /// Stores the object behind `value` into reference field `i` of `h`.
    pub fn set_ref(&mut self, h: Handle, i: u16, value: &Handle) {
        let env = &mut self.vm.env;
        env.charge(env.cost.field_store_ns + self.vm.collector.store_barrier_ns());
        let obj = env.heap.handles.get(h);
        let v = env.heap.handles.get(*value);
        env.heap.set_ref(obj, i, v);
    }

    /// Nulls reference field `i` of `h`.
    pub fn set_ref_null(&mut self, h: Handle, i: u16) {
        let env = &mut self.vm.env;
        env.charge(env.cost.field_store_ns + self.vm.collector.store_barrier_ns());
        let obj = env.heap.handles.get(h);
        env.heap.set_ref(obj, i, ObjectRef::NULL);
    }

    /// Loads data word `j` of `h`.
    pub fn get_data(&mut self, h: Handle, j: u32) -> u64 {
        let env = &mut self.vm.env;
        env.charge(env.cost.field_load_ns + self.vm.collector.load_barrier_ns());
        let obj = env.heap.handles.get(h);
        env.heap.get_data(obj, j)
    }

    /// Stores data word `j` of `h`.
    pub fn set_data(&mut self, h: Handle, j: u32, value: u64) {
        let env = &mut self.vm.env;
        env.charge(env.cost.field_store_ns + self.vm.collector.store_barrier_ns());
        let obj = env.heap.handles.get(h);
        env.heap.set_data(obj, j, value);
    }

    /// Releases a root handle; the object becomes collectable unless
    /// otherwise reachable.
    pub fn release(&mut self, h: Handle) {
        self.vm.env.heap.handles.drop_handle(h);
    }

    // --- Locking ---

    /// Bias-locks the object towards this thread, overwriting the
    /// allocation context in the header (paper §3.2.2).
    pub fn bias_lock(&mut self, h: Handle) {
        let env = &mut self.vm.env;
        env.charge(env.cost.field_store_ns);
        let obj = env.heap.handles.get(h);
        let hdr = env.heap.header(obj).with_bias(self.thread.0);
        env.heap.set_header(obj, hdr);
    }

    /// The current header of the object behind `h` (test/inspection use).
    pub fn header_of(&self, h: Handle) -> ObjectHeader {
        let obj = self.vm.env.heap.handles.get(h);
        self.vm.env.heap.header(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::jit::JitConfig;
    use crate::profiler::NullProfiler;
    use crate::program::ProgramBuilder;
    use rolp_heap::{AllocFailure, Heap, HeapConfig, SpaceKind};

    /// A trivial collector: eden-only bump allocation, aborts on
    /// exhaustion. Lets the VM be tested without `rolp-gc`.
    struct BumpCollector;

    impl CollectorApi for BumpCollector {
        fn allocate(&mut self, env: &mut VmEnv, req: AllocRequest) -> ObjectRef {
            match env.heap.alloc_in(
                SpaceKind::Eden,
                req.class,
                req.ref_words,
                req.data_words,
                req.header,
            ) {
                Ok(r) => r,
                Err(AllocFailure::NeedsGc) => panic!("BumpCollector heap exhausted"),
                Err(e) => panic!("allocation failed: {e:?}"),
            }
        }

        fn name(&self) -> &'static str {
            "bump"
        }

        fn gc_cycles(&self) -> u64 {
            0
        }
    }

    struct World {
        vm: Vm,
        main: MethodId,
        helper: MethodId,
        cs_helper: CallSiteId,
        site_main: AllocSiteId,
        site_helper: AllocSiteId,
        class: ClassId,
    }

    fn world(compile_threshold: u64) -> World {
        let mut b = ProgramBuilder::new();
        let main = b.method("app.Main::run", 200, false);
        let helper = b.method("app.Helper::make", 120, false);
        let cs_helper = b.call_site(main, helper);
        let site_main = b.alloc_site(main, 10);
        let site_helper = b.alloc_site(helper, 5);
        let program = b.build();

        let mut heap = Heap::new(HeapConfig { region_bytes: 8192, max_heap_bytes: 1 << 20 });
        let class = heap.classes.register("app.Obj");
        let env = VmEnv::new(
            heap,
            CostModel::default(),
            program,
            JitConfig { compile_threshold, ..Default::default() },
            1,
        );
        let vm = Vm::new(env, Rc::new(RefCell::new(NullProfiler)), Box::new(BumpCollector), 42);
        World { vm, main, helper, cs_helper, site_main, site_helper, class }
    }

    #[test]
    fn calls_advance_the_clock() {
        let mut w = world(1_000);
        let cs = w.cs_helper;
        let mut ctx = w.vm.ctx(ThreadId(0));
        let before = ctx.env().clock.now();
        ctx.call(cs, |ctx| ctx.work(100));
        let after = ctx.env().clock.now();
        assert!(after > before);
    }

    #[test]
    fn hot_methods_get_compiled_and_run_faster() {
        let mut w = world(8);
        let cs = w.cs_helper;
        let helper = w.helper;

        // Warm up until compiled.
        for _ in 0..8 {
            w.vm.ctx(ThreadId(0)).call(cs, |ctx| ctx.work(1));
        }
        assert!(w.vm.env.jit.is_compiled(helper));

        // Compiled work is cheaper than interpreted work.
        let t0 = w.vm.env.clock.now();
        w.vm.ctx(ThreadId(0)).call(cs, |ctx| ctx.work(1_000));
        let compiled_cost = (w.vm.env.clock.now() - t0).as_nanos();

        let mut w2 = world(1_000_000);
        let cs2 = w2.cs_helper;
        let t0 = w2.vm.env.clock.now();
        w2.vm.ctx(ThreadId(0)).call(cs2, |ctx| ctx.work(1_000));
        let interpreted_cost = (w2.vm.env.clock.now() - t0).as_nanos();
        assert!(
            interpreted_cost > compiled_cost * 3,
            "interpreted {interpreted_cost} vs compiled {compiled_cost}"
        );
    }

    #[test]
    fn allocation_creates_live_handles() {
        let mut w = world(1_000);
        let (site, class) = (w.site_main, w.class);
        let mut ctx = w.vm.ctx(ThreadId(0));
        let h = ctx.alloc(site, class, 1, 2);
        ctx.set_data(h, 0, 99);
        assert_eq!(ctx.get_data(h, 0), 99);
        let h2 = ctx.alloc(site, class, 0, 0);
        ctx.set_ref(h, 0, &h2);
        let read = ctx.get_ref(h, 0).expect("field was set");
        assert_eq!(ctx.env().heap.handles.get(read), ctx.env().heap.handles.get(h2));
    }

    #[test]
    fn tss_stays_zero_when_no_profiling_enabled() {
        let mut w = world(2);
        let cs = w.cs_helper;
        for _ in 0..10 {
            w.vm.ctx(ThreadId(0)).call(cs, |ctx| ctx.work(5));
        }
        assert_eq!(w.vm.env.threads[0].tss, 0);
    }

    #[test]
    fn enabled_call_profiling_updates_tss_during_call() {
        let mut w = world(1);
        let cs = w.cs_helper;
        let main = w.main;
        // Compile both methods, then enable profiling on the site.
        for _ in 0..3 {
            w.vm.ctx(ThreadId(0)).call(cs, |ctx| ctx.work(1));
        }
        // The caller (main) is never invoked through a site here, so
        // compile it manually by bumping its counter.
        let program = Rc::clone(&w.vm.env.program);
        while !w.vm.env.jit.is_compiled(main) {
            w.vm.env.jit.note_entry(&program, main, &mut w.vm.rng);
        }
        w.vm.env.jit.enable_call_profiling(cs);
        let delta = w.vm.env.jit.call_site(cs).delta;
        assert_ne!(delta, 0);

        let mut ctx = w.vm.ctx(ThreadId(0));
        ctx.call(cs, |ctx| {
            assert_eq!(ctx.env().threads[0].tss, delta, "delta added on entry");
        });
        assert_eq!(w.vm.env.threads[0].tss, 0, "delta removed on exit");
    }

    #[test]
    fn exception_unwind_without_hook_corrupts_tss() {
        let mut w = world(1);
        let cs = w.cs_helper;
        let main = w.main;
        for _ in 0..3 {
            w.vm.ctx(ThreadId(0)).call(cs, |ctx| ctx.work(1));
        }
        let program = Rc::clone(&w.vm.env.program);
        while !w.vm.env.jit.is_compiled(main) {
            w.vm.env.jit.note_entry(&program, main, &mut w.vm.rng);
        }
        w.vm.env.jit.enable_call_profiling(cs);
        let delta = w.vm.env.jit.call_site(cs).delta;

        // NullProfiler has no rethrow hook: the exit update is skipped.
        let r =
            w.vm.ctx(ThreadId(0)).call_fallible(cs, |_| Err::<(), _>(GuestException { code: 7 }));
        assert!(r.is_err());
        assert_eq!(w.vm.env.threads[0].tss, delta, "leaked delta after unwind");
    }

    #[test]
    fn profiled_allocation_installs_context() {
        struct FixedProfiler;
        impl VmProfiler for FixedProfiler {
            fn on_jit_compile(
                &mut self,
                program: &crate::program::Program,
                jit: &mut crate::jit::JitState,
                method: MethodId,
            ) {
                for &s in program.alloc_sites_of(method) {
                    jit.assign_profile_id(s);
                }
            }
            fn on_alloc(&mut self, pid: u16, tss: u16, _t: ThreadId) -> u32 {
                ((pid as u32) << 16) | tss as u32
            }
        }

        let mut w = world(2);
        w.vm.profiler = Rc::new(RefCell::new(FixedProfiler));
        let cs = w.cs_helper;
        let (site_h, class) = (w.site_helper, w.class);

        // Cold: allocation context stays empty.
        let h = w.vm.ctx(ThreadId(0)).call(cs, |ctx| ctx.alloc(site_h, class, 0, 0));
        assert_eq!(w.vm.ctx(ThreadId(0)).header_of(h).allocation_context(), Some(0));

        // Hot: the helper compiles after threshold entries; its site then
        // carries a profile id and new objects get a context.
        for _ in 0..4 {
            w.vm.ctx(ThreadId(0)).call(cs, |ctx| ctx.work(1));
        }
        let h2 = w.vm.ctx(ThreadId(0)).call(cs, |ctx| ctx.alloc(site_h, class, 0, 0));
        let ctx_val = w.vm.ctx(ThreadId(0)).header_of(h2).allocation_context().unwrap();
        assert_ne!(ctx_val, 0);
        assert_eq!(ctx_val & 0xFFFF, 0, "tss part is zero outside profiled paths");
    }

    #[test]
    fn bias_locking_destroys_context() {
        let mut w = world(1_000);
        let (site, class) = (w.site_main, w.class);
        let mut ctx = w.vm.ctx(ThreadId(0));
        let h = ctx.alloc(site, class, 0, 0);
        ctx.bias_lock(h);
        assert!(ctx.header_of(h).is_biased());
        assert_eq!(ctx.header_of(h).allocation_context(), None);
    }

    #[test]
    fn telemetry_attributes_every_charged_nanosecond() {
        let mut w = world(2);
        let cs = w.cs_helper;
        // Interpreted warmup, a JIT compile, compiled work, and idle
        // pacing — all of it must land in exactly one bucket.
        for _ in 0..6 {
            w.vm.ctx(ThreadId(0)).call(cs, |ctx| ctx.work(10));
        }
        w.vm.ctx(ThreadId(0)).idle(1_000);

        let cells = std::sync::Arc::clone(w.vm.env.telemetry.cells());
        let attributed: u64 = rolp_telemetry::Bucket::ALL
            .iter()
            .filter(|b| !b.is_modeled())
            .map(|&b| cells.time(b))
            .sum();
        assert_eq!(
            attributed,
            w.vm.env.clock.now().as_nanos(),
            "clock-backed buckets must partition the whole clock"
        );
        assert!(cells.time(Bucket::JitCompile) > 0, "compile time attributed");
        assert_eq!(cells.time(Bucket::Idle), 1_000);
        assert_eq!(cells.counter(CounterId::JitCompiles), 1);
    }

    #[test]
    fn call_profiling_charges_land_in_profiling_bucket() {
        let mut w = world(1);
        let cs = w.cs_helper;
        let main = w.main;
        for _ in 0..3 {
            w.vm.ctx(ThreadId(0)).call(cs, |ctx| ctx.work(1));
        }
        let program = Rc::clone(&w.vm.env.program);
        while !w.vm.env.jit.is_compiled(main) {
            w.vm.env.jit.note_entry(&program, main, &mut w.vm.rng);
        }
        w.vm.env.jit.enable_call_profiling(cs);

        let before = w.vm.env.telemetry.cells().time(Bucket::MutatorProfiling);
        w.vm.ctx(ThreadId(0)).call(cs, |ctx| ctx.work(1));
        let after = w.vm.env.telemetry.cells().time(Bucket::MutatorProfiling);
        // Entry and exit both take the slow profiling path.
        assert_eq!(after - before, 2 * w.vm.env.cost.profile_call_slow_ns);
        assert_eq!(w.vm.env.telemetry.current(), Bucket::MutatorApp, "span closed");
    }

    #[test]
    fn work_in_interpreted_loop_triggers_osr() {
        let mut w = world(1_000_000); // entry threshold unreachable
        let cs = w.cs_helper;
        let helper = w.helper;
        w.vm.env.jit = crate::jit::JitState::new(
            &w.vm.env.program,
            JitConfig { compile_threshold: 1_000_000, osr_threshold: 500, ..Default::default() },
        );
        w.vm.ctx(ThreadId(0)).call(cs, |ctx| ctx.work(1_000));
        assert!(w.vm.env.jit.is_compiled(helper));
        assert!(w.vm.env.jit.method(helper).osr_compiled);
    }
}
