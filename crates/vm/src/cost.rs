//! The simulated-time cost model.
//!
//! Every mutator action and every unit of collector work charges a cost in
//! simulated nanoseconds. The constants are calibrated against the paper's
//! testbed (Intel Xeon E5505, 16 GB RAM, OpenJDK 8): copy bandwidth is the
//! published bottleneck for GC pauses (paper §1, §2.1), interpreted code
//! runs an order of magnitude slower than compiled code, and ROLP's
//! profiling instructions cost what the paper's assembly analysis
//! (§3.2.4) implies — a near-free not-taken branch on a cached word for
//! disabled call profiling, a few nanoseconds of TLS arithmetic when
//! enabled, and a table increment plus header install per profiled
//! allocation.
//!
//! When experiments scale the heap down by `1/s`, the copy bandwidth is
//! scaled down by the same factor so reported pause magnitudes stay
//! comparable with the paper's milliseconds (see `DESIGN.md` §8).

use rolp_metrics::SimScale;

/// Nanosecond costs for mutator and collector actions.
#[derive(Debug, Clone)]
pub struct CostModel {
    // --- Mutator execution ---
    /// One unit of compiled guest work.
    pub compiled_op_ns: u64,
    /// One unit of interpreted guest work.
    pub interpreted_op_ns: u64,
    /// Compiled (non-inlined) call + return overhead.
    pub call_ns: u64,
    /// Interpreted call + return overhead.
    pub interpreted_call_ns: u64,
    /// Allocation fast path (TLAB bump + header store).
    pub alloc_ns: u64,
    /// TLAB refill stall: carving a fresh chunk from a region frontier
    /// under the heap lock. Charged to the GC bucket, not application
    /// time — the stall is heap machinery, exactly like a pause.
    pub tlab_refill_ns: u64,
    /// Extra allocation cost when the allocating method is interpreted.
    pub interpreted_alloc_extra_ns: u64,
    /// Zeroing/initialization per word allocated.
    pub alloc_init_word_ns: u64,
    /// Reference or data field load.
    pub field_load_ns: u64,
    /// Reference or data field store (includes the G1 write barrier).
    pub field_store_ns: u64,
    /// One-time cost of JIT-compiling a method, per bytecode unit.
    pub jit_compile_per_bytecode_ns: u64,

    // --- ROLP profiling instructions (paper §3.2.4) ---
    /// Disabled call-site profiling: `mov; mov; test; je` on a value cached
    /// next to the code — the "fast profiling branch".
    pub profile_call_fast_ns: u64,
    /// Enabled call-site profiling: the fast path plus `add`/`sub` on the
    /// TLS-resident thread stack state — the "slow profiling branch".
    /// Charged once at entry and once at exit.
    pub profile_call_slow_ns: u64,
    /// Profiled allocation: OLD-table increment + context install.
    pub profile_alloc_ns: u64,
    /// Per-survivor OLD-table lookup/update during GC (the §7.4 cost that
    /// motivates survivor-tracking shutdown).
    pub profile_survivor_ns: u64,
    /// Profiled allocation in *interpreted* code (Memento-style ablation):
    /// the interpreter cannot cache site metadata next to compiled code,
    /// so the per-allocation cost is several times the jitted path.
    pub profile_alloc_interpreted_ns: u64,

    // --- Collector work ---
    /// Effective object-copy bandwidth in bytes per second, *per GC
    /// worker* (memory-bandwidth-bound, paper §2.1).
    pub copy_bandwidth_bytes_per_sec: u64,
    /// Number of parallel GC workers.
    pub gc_workers: u64,
    /// Fixed safepoint synchronization cost per pause.
    pub safepoint_ns: u64,
    /// Root-set scan per live handle.
    pub root_scan_ns: u64,
    /// Per-survivor processing overhead (forwarding, age update) beyond
    /// raw copy bandwidth.
    pub survivor_overhead_ns: u64,
    /// Remembered-set slot scan cost per entry.
    pub remset_scan_ns: u64,
    /// Per-region fixed cost of including a region in a collection.
    pub region_overhead_ns: u64,

    // --- Concurrent-collector taxes (paper §2.2, §8.5) ---
    /// Load-barrier cost per reference load (ZGC/C4 class collectors).
    pub concurrent_load_barrier_ns: u64,
    /// Store-barrier cost per field store.
    pub concurrent_store_barrier_ns: u64,
    /// Per-mille slowdown of compiled guest work under a fully concurrent
    /// collector (load barriers on every compiled memory access; the
    /// paper's §2.2/§8.5 throughput tax).
    pub concurrent_work_tax_permille: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            compiled_op_ns: 1,
            interpreted_op_ns: 12,
            call_ns: 3,
            interpreted_call_ns: 35,
            alloc_ns: 14,
            tlab_refill_ns: 160,
            interpreted_alloc_extra_ns: 40,
            alloc_init_word_ns: 1,
            field_load_ns: 2,
            field_store_ns: 4,
            jit_compile_per_bytecode_ns: 900,
            profile_call_fast_ns: 1,
            profile_call_slow_ns: 3,
            profile_alloc_ns: 7,
            profile_survivor_ns: 18,
            profile_alloc_interpreted_ns: 45,
            copy_bandwidth_bytes_per_sec: 3_000_000_000,
            gc_workers: 4,
            safepoint_ns: 120_000,
            root_scan_ns: 40,
            survivor_overhead_ns: 24,
            remset_scan_ns: 22,
            region_overhead_ns: 18_000,
            concurrent_load_barrier_ns: 1,
            concurrent_store_barrier_ns: 3,
            concurrent_work_tax_permille: 180,
        }
    }
}

impl CostModel {
    /// The default model with copy bandwidth scaled down to match a heap
    /// scaled by `scale`, keeping pause magnitudes comparable to the paper.
    pub fn scaled(scale: SimScale) -> Self {
        let mut m = CostModel::default();
        m.copy_bandwidth_bytes_per_sec = (m.copy_bandwidth_bytes_per_sec / scale.divisor()).max(1);
        m
    }

    /// Nanoseconds to copy `bytes` with all GC workers pulling.
    pub fn copy_ns(&self, bytes: u64) -> u64 {
        let per_sec = self.copy_bandwidth_bytes_per_sec.saturating_mul(self.gc_workers);
        // ns = bytes / (bytes/s) * 1e9, computed in u128 to avoid overflow.
        ((bytes as u128 * 1_000_000_000) / per_sec.max(1) as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_time_matches_bandwidth() {
        let m = CostModel::default();
        // 12 GB/s aggregate => 1 GiB in ~89 ms.
        let ns = m.copy_ns(1 << 30);
        let ms = ns as f64 / 1e6;
        assert!(ms > 80.0 && ms < 100.0, "got {ms} ms");
    }

    #[test]
    fn scaling_divides_bandwidth() {
        let full = CostModel::default();
        let scaled = CostModel::scaled(SimScale::new(16));
        assert_eq!(scaled.copy_bandwidth_bytes_per_sec * 16, full.copy_bandwidth_bytes_per_sec);
        // Copying a 16x smaller survivor set therefore takes the same time.
        assert_eq!(full.copy_ns(16 << 20), scaled.copy_ns(1 << 20));
    }

    #[test]
    fn interpreted_code_is_an_order_slower() {
        let m = CostModel::default();
        assert!(m.interpreted_op_ns >= 10 * m.compiled_op_ns);
        assert!(m.interpreted_call_ns >= 10 * m.call_ns);
    }

    #[test]
    fn fast_profiling_branch_is_cheaper_than_slow() {
        let m = CostModel::default();
        assert!(m.profile_call_fast_ns < m.profile_call_slow_ns);
    }
}
