//! Profiler hook points.
//!
//! The VM is profiler-agnostic: it exposes the hook points HotSpot would
//! give a profiler implemented inside the JVM, and `rolp` (the paper's
//! contribution) plugs into them. [`NullProfiler`] is the baseline "plain
//! G1/CMS JVM" configuration with no profiling code installed at all.

use crate::jit::JitState;
use crate::program::{AllocSiteId, MethodId, Program};
use crate::thread::ThreadId;

/// Hooks a profiler installs into the VM.
pub trait VmProfiler {
    /// A method was JIT-compiled (normally or via OSR). This is where the
    /// profiler decides which of the method's allocation sites to
    /// instrument (package filters, §7.3) by calling
    /// [`JitState::assign_profile_id`].
    fn on_jit_compile(&mut self, program: &Program, jit: &mut JitState, method: MethodId);

    /// A profiled allocation site is about to allocate on `thread` whose
    /// current thread stack state is `tss`. Returns the 32-bit allocation
    /// context to install in the object header, after recording the
    /// allocation (age-0 increment in the OLD table, §3.3).
    fn on_alloc(&mut self, site_profile_id: u16, tss: u16, thread: ThreadId) -> u32;

    /// Whether the exception-rethrow stack-state fixup hook is installed
    /// (§7.2.2). When false, unwinding a profiled frame skips the TSS
    /// subtraction, leaving corruption for the reconciliation pass.
    fn exception_hook_installed(&self) -> bool {
        true
    }

    /// An allocation happened at an *unprofiled* site (cold code or
    /// filtered package). Lets ablations measure coverage loss.
    fn on_unprofiled_alloc(&mut self) {}
}

/// The no-profiler baseline: no allocation site is ever instrumented.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProfiler;

impl VmProfiler for NullProfiler {
    fn on_jit_compile(&mut self, _program: &Program, _jit: &mut JitState, _method: MethodId) {}

    fn on_alloc(&mut self, _site_profile_id: u16, _tss: u16, _thread: ThreadId) -> u32 {
        0
    }

    fn exception_hook_installed(&self) -> bool {
        false
    }
}

/// Convenience: an allocation-site id that is definitely unprofiled.
pub const UNPROFILED_SITE: Option<AllocSiteId> = None;
