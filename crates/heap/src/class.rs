//! Guest classes.
//!
//! Classes in the reproduction carry only what the experiments need: a name
//! (used by package filters and leak reports) and allocation statistics.
//! Per-object shape (size, number of reference fields) is stored in the
//! object's info word instead, because guest "arrays" of differing lengths
//! share one class.

/// Index of a class in the [`ClassTable`] (max 65 536 classes — the info
/// word stores it in 16 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u16);

/// Metadata for one guest class.
#[derive(Debug, Clone)]
pub struct ClassInfo {
    /// Fully qualified name, e.g. `"cassandra.db.Memtable$Entry"`.
    pub name: String,
    /// Objects of this class allocated so far (for leak reports).
    pub allocated: u64,
}

/// The table of guest classes.
#[derive(Debug, Default, Clone)]
pub struct ClassTable {
    classes: Vec<ClassInfo>,
}

impl ClassTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a class and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if more than 65 536 classes are registered.
    pub fn register(&mut self, name: impl Into<String>) -> ClassId {
        assert!(self.classes.len() < u16::MAX as usize + 1, "class table full");
        let id = ClassId(self.classes.len() as u16);
        self.classes.push(ClassInfo { name: name.into(), allocated: 0 });
        id
    }

    /// Looks up a class by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`ClassTable::register`].
    pub fn get(&self, id: ClassId) -> &ClassInfo {
        &self.classes[id.0 as usize]
    }

    /// Bumps the allocation counter of `id`.
    pub fn note_allocation(&mut self, id: ClassId) {
        self.classes[id.0 as usize].allocated += 1;
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when no class is registered.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterates `(id, info)` over all classes.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &ClassInfo)> {
        self.classes.iter().enumerate().map(|(i, c)| (ClassId(i as u16), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut t = ClassTable::new();
        let a = t.register("pkg.A");
        let b = t.register("pkg.B");
        assert_ne!(a, b);
        assert_eq!(t.get(a).name, "pkg.A");
        assert_eq!(t.get(b).name, "pkg.B");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn allocation_counter_increments() {
        let mut t = ClassTable::new();
        let a = t.register("X");
        t.note_allocation(a);
        t.note_allocation(a);
        assert_eq!(t.get(a).allocated, 2);
    }
}
