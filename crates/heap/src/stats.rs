//! Heap occupancy and fragmentation summaries.
//!
//! Collector-independent views over the region table: per-space region and
//! byte counts, and the co-located-garbage fragmentation measure that the
//! §6 lifetime-demotion signal is built from. Examples and diagnostics
//! render these; collectors compute their own policy-specific variants.

use crate::heap::Heap;
use crate::region::RegionKind;

/// Occupancy of one space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaceUsage {
    /// Regions currently assigned to the space.
    pub regions: usize,
    /// Bytes allocated in those regions.
    pub used_bytes: u64,
    /// Live bytes per the most recent marking (0 where unknown).
    pub live_bytes: u64,
}

/// A whole-heap occupancy snapshot.
#[derive(Debug, Clone, Default)]
pub struct HeapUsage {
    /// Eden regions.
    pub eden: SpaceUsage,
    /// Survivor regions.
    pub survivor: SpaceUsage,
    /// Old regions.
    pub old: SpaceUsage,
    /// Dynamic generations 1..=14 (index 0 unused).
    pub dynamic: [SpaceUsage; 15],
    /// Humongous regions.
    pub humongous: SpaceUsage,
    /// Free regions.
    pub free_regions: usize,
}

impl HeapUsage {
    /// Takes a snapshot of `heap`.
    pub fn snapshot(heap: &Heap) -> HeapUsage {
        let mut usage = HeapUsage::default();
        for (_, region) in heap.regions() {
            let slot = match region.kind {
                RegionKind::Free => {
                    usage.free_regions += 1;
                    continue;
                }
                RegionKind::Eden => &mut usage.eden,
                RegionKind::Survivor => &mut usage.survivor,
                RegionKind::Old => &mut usage.old,
                RegionKind::Dynamic(g) => &mut usage.dynamic[g as usize],
                RegionKind::Humongous | RegionKind::HumongousCont => &mut usage.humongous,
            };
            slot.regions += 1;
            slot.used_bytes += region.used_bytes();
            if region.liveness_valid {
                slot.live_bytes += region.live_bytes;
            }
        }
        usage
    }

    /// Total bytes used across all spaces.
    pub fn total_used(&self) -> u64 {
        let dynamic: u64 = self.dynamic.iter().map(|d| d.used_bytes).sum();
        self.eden.used_bytes
            + self.survivor.used_bytes
            + self.old.used_bytes
            + self.humongous.used_bytes
            + dynamic
    }

    /// Co-located-garbage fragmentation of the tenured spaces: garbage in
    /// *partially live* marked regions over their used bytes (fully dead
    /// regions are free to reclaim, so they are not fragmentation; see the
    /// collector's §6 demotion signal). 0.0 when unknown.
    pub fn tenured_fragmentation(heap: &Heap) -> f64 {
        let mut used = 0u64;
        let mut garbage = 0u64;
        for (_, r) in heap.regions() {
            let tenured = matches!(r.kind, RegionKind::Old | RegionKind::Dynamic(_));
            if tenured && r.liveness_valid && r.live_bytes > 0 && r.used_bytes() > 0 {
                used += r.used_bytes();
                garbage += r.garbage_bytes();
            }
        }
        if used == 0 {
            0.0
        } else {
            garbage as f64 / used as f64
        }
    }

    /// Renders a compact per-space table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut row = |name: &str, u: &SpaceUsage| {
            if u.regions > 0 {
                let _ = writeln!(
                    out,
                    "  {name:<10} {:>5} regions  {:>12} used  {:>12} live",
                    u.regions,
                    crate::fmt_kib(u.used_bytes),
                    crate::fmt_kib(u.live_bytes),
                );
            }
        };
        row("eden", &self.eden);
        row("survivor", &self.survivor);
        row("old", &self.old);
        for (g, d) in self.dynamic.iter().enumerate().skip(1) {
            row(&format!("dynamic {g}"), d);
        }
        row("humongous", &self.humongous);
        let _ = writeln!(out, "  {:<10} {:>5} regions", "free", self.free_regions);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassId;
    use crate::header::ObjectHeader;
    use crate::heap::{HeapConfig, SpaceKind};

    fn heap() -> Heap {
        let mut h = Heap::new(HeapConfig { region_bytes: 1024, max_heap_bytes: 32 * 1024 });
        h.classes.register("t.A");
        h
    }

    #[test]
    fn snapshot_counts_spaces() {
        let mut h = heap();
        let _e = h.alloc_in(SpaceKind::Eden, ClassId(0), 0, 8, ObjectHeader::new(1)).unwrap();
        let _o = h.alloc_in(SpaceKind::Old, ClassId(0), 0, 8, ObjectHeader::new(2)).unwrap();
        let _d = h.alloc_in(SpaceKind::Dynamic(3), ClassId(0), 0, 8, ObjectHeader::new(3)).unwrap();
        let u = HeapUsage::snapshot(&h);
        assert_eq!(u.eden.regions, 1);
        assert_eq!(u.old.regions, 1);
        assert_eq!(u.dynamic[3].regions, 1);
        assert_eq!(u.total_used(), 3 * 10 * 8);
        assert_eq!(u.free_regions, h.free_regions());
        let text = u.render();
        assert!(text.contains("dynamic 3"));
        assert!(text.contains("eden"));
    }

    #[test]
    fn fragmentation_ignores_unmarked_and_fully_dead_regions() {
        let mut h = heap();
        let o = h.alloc_in(SpaceKind::Old, ClassId(0), 0, 30, ObjectHeader::new(1)).unwrap();
        // Unmarked: unknown liveness -> not fragmentation.
        assert_eq!(HeapUsage::tenured_fragmentation(&h), 0.0);
        // Mark it half-live.
        let region = o.region();
        let used = h.region(region).used_bytes();
        h.region_mut(region).liveness_valid = true;
        h.region_mut(region).live_bytes = used / 2;
        let frag = HeapUsage::tenured_fragmentation(&h);
        assert!((frag - 0.5).abs() < 0.01, "got {frag}");
        // Fully dead: free to reclaim, not fragmentation.
        h.region_mut(region).live_bytes = 0;
        assert_eq!(HeapUsage::tenured_fragmentation(&h), 0.0);
    }
}
