//! Heap invariant verification (test and debug support).
//!
//! A verifier pass over the whole heap that checks structural invariants
//! collectors rely on. It is deliberately slow and exhaustive; tests and
//! the property suites call it after mutation/collection sequences.

use std::collections::HashSet;

use crate::heap::{Heap, OBJECT_HEADER_WORDS};
use crate::object::ObjectRef;
use crate::region::RegionKind;

/// A violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// An object's size word is smaller than the minimum object size or
    /// walks past the region frontier.
    CorruptLayout { obj: ObjectRef, detail: String },
    /// A reference field points outside any allocated object.
    DanglingRef { from: ObjectRef, field: u16, to: ObjectRef },
    /// A reachable object is still forwarded after a completed collection.
    StaleForwarding { obj: ObjectRef },
    /// A root handle points outside any allocated object.
    BadRoot { to: ObjectRef },
    /// A cross-region reference has no remembered-set entry.
    MissingRemsetEntry { from: ObjectRef, field: u16, to: ObjectRef },
}

/// Verifies the whole heap; returns all violations found.
///
/// `check_remsets` additionally validates remembered-set completeness
/// (every live cross-region reference must be covered by an entry); this is
/// only meaningful directly after a collection that rebuilt liveness.
pub fn verify_heap(heap: &Heap, check_remsets: bool) -> Vec<VerifyError> {
    let mut errors = Vec::new();

    // Live (un-retired) TLAB gaps contain uninitialized words; the walk
    // skips them the same way it skips retirement fillers, so verification
    // is valid between safepoints too.
    let tlab_gaps: std::collections::HashMap<(crate::region::RegionId, u32), u32> = heap
        .live_tlab_gaps()
        .into_iter()
        .map(|(region, cursor, limit)| ((region, cursor), limit))
        .collect();

    // Pass 1: walk every region and record valid object start offsets.
    let mut valid: HashSet<ObjectRef> = HashSet::new();
    for (id, region) in heap.regions() {
        if matches!(region.kind, RegionKind::Free | RegionKind::HumongousCont) {
            continue;
        }
        let mut cursor = 0u32;
        while (cursor as usize) < region.top() {
            if let Some(&limit) = tlab_gaps.get(&(id, cursor)) {
                cursor = limit;
                continue;
            }
            // TLAB retirement fillers are dead space, not objects.
            let word = region.word(cursor);
            if crate::header::ObjectHeader::is_filler_word(word) {
                let skip = crate::header::ObjectHeader::filler_size_words(word) as u32;
                if skip == 0 || cursor as usize + skip as usize > region.top() {
                    errors.push(VerifyError::CorruptLayout {
                        obj: ObjectRef::new(id, cursor),
                        detail: format!("filler of {skip} words at top {}", region.top()),
                    });
                    break;
                }
                cursor += skip;
                continue;
            }
            let obj = ObjectRef::new(id, cursor);
            let size = heap.size_words(obj);
            if size < OBJECT_HEADER_WORDS || cursor as usize + size as usize > region.top() {
                errors.push(VerifyError::CorruptLayout {
                    obj,
                    detail: format!("size {size} at top {}", region.top()),
                });
                break;
            }
            valid.insert(obj);
            cursor += size;
        }
    }

    // Pass 2: check refs, forwarding, and remset coverage.
    for &obj in &valid {
        let header = heap.header(obj);
        if header.is_forwarded() {
            // Forwarded headers are only legal mid-collection; verify runs
            // only at rest.
            errors.push(VerifyError::StaleForwarding { obj });
            continue;
        }
        for i in 0..heap.ref_words(obj) {
            let to = heap.get_ref(obj, i);
            if to.is_null() {
                continue;
            }
            if !valid.contains(&to) {
                errors.push(VerifyError::DanglingRef { from: obj, field: i, to });
                continue;
            }
            if check_remsets && to.region() != obj.region() {
                let slot_off = obj.offset() + OBJECT_HEADER_WORDS + i as u32;
                let covered = heap
                    .region(to.region())
                    .rset
                    .iter()
                    .any(|s| s.region == obj.region() && s.offset == slot_off);
                if !covered {
                    errors.push(VerifyError::MissingRemsetEntry { from: obj, field: i, to });
                }
            }
        }
    }

    // Pass 3: roots must point at valid objects.
    for root in heap.handles.roots() {
        if !valid.contains(&root) {
            errors.push(VerifyError::BadRoot { to: root });
        }
    }

    errors
}

/// Panics with a readable report if the heap has violations.
pub fn assert_heap_valid(heap: &Heap, check_remsets: bool) {
    let errors = verify_heap(heap, check_remsets);
    assert!(
        errors.is_empty(),
        "heap verification failed with {} error(s); first: {:?}",
        errors.len(),
        errors.first()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassId;
    use crate::header::ObjectHeader;
    use crate::heap::{HeapConfig, SpaceKind};

    fn heap() -> Heap {
        let mut h = Heap::new(HeapConfig { region_bytes: 1024, max_heap_bytes: 16 * 1024 });
        h.classes.register("t.A");
        h
    }

    #[test]
    fn clean_heap_verifies() {
        let mut h = heap();
        let a = h.alloc_in(SpaceKind::Eden, ClassId(0), 1, 1, ObjectHeader::new(1)).unwrap();
        let b = h.alloc_in(SpaceKind::Old, ClassId(0), 0, 1, ObjectHeader::new(2)).unwrap();
        h.set_ref(a, 0, b);
        h.handles.create(a);
        assert_eq!(verify_heap(&h, true), vec![]);
    }

    #[test]
    fn detects_dangling_reference() {
        let mut h = heap();
        let a = h.alloc_in(SpaceKind::Eden, ClassId(0), 1, 0, ObjectHeader::new(1)).unwrap();
        // Point into the middle of nowhere (a non-object offset).
        let bogus = ObjectRef::new(a.region(), 999_999);
        // Bypass set_ref's barrier since the target region id is invalid;
        // write the raw word directly.
        let off = a.offset() + OBJECT_HEADER_WORDS;
        let region = a.region();
        h.region_mut(region).set_word(off, bogus.raw());
        let errs = verify_heap(&h, false);
        assert!(matches!(errs.as_slice(), [VerifyError::DanglingRef { .. }]));
    }

    #[test]
    fn detects_stale_forwarding() {
        let mut h = heap();
        let a = h.alloc_in(SpaceKind::Eden, ClassId(0), 0, 0, ObjectHeader::new(1)).unwrap();
        let _a2 = h.copy_object(a, SpaceKind::Old).unwrap();
        let errs = verify_heap(&h, false);
        assert!(errs.iter().any(|e| matches!(e, VerifyError::StaleForwarding { .. })));
    }

    #[test]
    fn detects_missing_remset_entry() {
        let mut h = heap();
        let a = h.alloc_in(SpaceKind::Eden, ClassId(0), 1, 0, ObjectHeader::new(1)).unwrap();
        let b = h.alloc_in(SpaceKind::Old, ClassId(0), 0, 0, ObjectHeader::new(2)).unwrap();
        h.set_ref(a, 0, b);
        // Forge: wipe the remset that the barrier just filled.
        let region = b.region();
        h.region_mut(region).rset.clear();
        let errs = verify_heap(&h, true);
        assert!(errs.iter().any(|e| matches!(e, VerifyError::MissingRemsetEntry { .. })));
    }

    #[test]
    fn fillers_between_objects_verify_clean() {
        use crate::heap::TlabAlloc;
        let mut h = heap();
        // Two threads carve from the same eden region (chunks shrunk below
        // the region size); retiring thread 0's partially used buffer
        // stamps a filler between the live objects.
        h.set_tlab_bytes(256);
        let a = match h.tlab_alloc(0, SpaceKind::Eden, ClassId(0), 1, 0, ObjectHeader::new(1)) {
            TlabAlloc::Refilled(o) => o,
            other => panic!("expected refill, got {other:?}"),
        };
        let b = match h.tlab_alloc(1, SpaceKind::Eden, ClassId(0), 1, 0, ObjectHeader::new(2)) {
            TlabAlloc::Refilled(o) => o,
            other => panic!("expected refill, got {other:?}"),
        };
        h.set_ref(a, 0, b);
        h.handles.create(a);
        h.retire_all_tlabs();
        assert!(h.stats().tlab_fillers >= 1, "a filler was stamped");
        assert_eq!(verify_heap(&h, true), vec![]);
    }

    #[test]
    fn detects_bad_root() {
        let mut h = heap();
        let a = h.alloc_in(SpaceKind::Eden, ClassId(0), 0, 0, ObjectHeader::new(1)).unwrap();
        h.handles.create(ObjectRef::new(a.region(), 555));
        let errs = verify_heap(&h, false);
        assert!(errs.iter().any(|e| matches!(e, VerifyError::BadRoot { .. })));
    }
}
