//! Heap regions.
//!
//! The heap is a fixed-size array of equally sized regions (G1-style).
//! Each region is a bump-allocated arena of 8-byte words; a region belongs
//! to exactly one space at a time and is recycled through the free list
//! after evacuation.

use crate::remset::RememberedSet;

/// Index of a region within the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

/// The space a region currently belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Unassigned, on the free list.
    Free,
    /// Young-generation allocation region.
    Eden,
    /// Young-generation survivor region.
    Survivor,
    /// Tenured region (G1 old generation / CMS old space).
    Old,
    /// NG2C dynamic generation `g` (1..=14); generation 0 is the young
    /// generation and 15 is the old generation (paper §7.1).
    Dynamic(u8),
    /// A region holding a single humongous object (first region).
    Humongous,
    /// Continuation of a humongous object spanning multiple regions.
    HumongousCont,
}

impl RegionKind {
    /// True for regions holding young-generation objects.
    pub fn is_young(self) -> bool {
        matches!(self, RegionKind::Eden | RegionKind::Survivor)
    }

    /// True for regions subject to allocation (not free, not humongous
    /// continuation).
    pub fn is_allocatable(self) -> bool {
        !matches!(self, RegionKind::Free | RegionKind::HumongousCont)
    }
}

/// One heap region.
#[derive(Debug, Clone)]
pub struct Region {
    /// Backing words. Allocated lazily on first assignment to a space.
    words: Vec<u64>,
    /// Bump pointer: next free word index.
    top: usize,
    /// Current space.
    pub kind: RegionKind,
    /// Live bytes found by the last marking/evacuation over this region.
    pub live_bytes: u64,
    /// References into this region from other regions (see [`remset`]).
    ///
    /// [`remset`]: crate::remset
    pub rset: RememberedSet,
    /// Monotone epoch of the last assignment, used to age regions for
    /// mixed-collection candidate selection.
    pub assigned_epoch: u64,
    /// Whether `live_bytes` reflects a marking that happened *after* the
    /// last assignment. Freshly assigned regions have unknown liveness;
    /// treating their 0 as "all garbage" would make collectors evacuate
    /// fully live regions.
    pub liveness_valid: bool,
}

impl Region {
    /// Creates an unassigned region; backing memory is not yet committed.
    pub fn new() -> Self {
        Region {
            words: Vec::new(),
            top: 0,
            kind: RegionKind::Free,
            live_bytes: 0,
            rset: RememberedSet::new(),
            assigned_epoch: 0,
            liveness_valid: false,
        }
    }

    /// Commits backing memory and assigns the region to a space.
    pub fn assign(&mut self, kind: RegionKind, region_words: usize, epoch: u64) {
        debug_assert!(matches!(self.kind, RegionKind::Free), "assigning a non-free region");
        if self.words.len() != region_words {
            self.words = vec![0; region_words];
        }
        self.top = 0;
        self.kind = kind;
        self.live_bytes = 0;
        self.rset.clear();
        self.assigned_epoch = epoch;
        self.liveness_valid = false;
    }

    /// Returns the region to the free list. Backing memory is kept
    /// committed for reuse (mirrors `-XX:+AlwaysPreTouch`-style behaviour;
    /// the heap tracks committed bytes separately).
    pub fn release(&mut self) {
        self.kind = RegionKind::Free;
        self.top = 0;
        self.live_bytes = 0;
        self.rset.clear();
        self.liveness_valid = false;
    }

    /// Bump-allocates `words` words; returns the offset of the first word
    /// or `None` if the region is full.
    pub fn bump(&mut self, words: usize) -> Option<u32> {
        if self.top + words > self.words.len() {
            return None;
        }
        let at = self.top;
        self.top += words;
        Some(at as u32)
    }

    /// Next free word index (the allocation frontier).
    pub fn top(&self) -> usize {
        self.top
    }

    /// Rolls the allocation frontier back to `to`. Only valid for TLAB
    /// retirement when the retiring buffer is the last carve in the
    /// region (its limit *is* the frontier), so the unused tail can be
    /// returned instead of stamped with a filler.
    ///
    /// # Panics
    ///
    /// Debug-panics if `to` is ahead of the current frontier.
    pub fn unbump(&mut self, to: u32) {
        debug_assert!((to as usize) <= self.top, "unbump past the frontier");
        self.top = to as usize;
    }

    /// Capacity in words (0 until first assignment).
    pub fn capacity_words(&self) -> usize {
        self.words.len()
    }

    /// Bytes allocated in this region so far.
    pub fn used_bytes(&self) -> u64 {
        (self.top * 8) as u64
    }

    /// Garbage bytes according to the last liveness information.
    pub fn garbage_bytes(&self) -> u64 {
        self.used_bytes().saturating_sub(self.live_bytes)
    }

    /// Reads a word.
    #[inline]
    pub fn word(&self, offset: u32) -> u64 {
        self.words[offset as usize]
    }

    /// Writes a word.
    #[inline]
    pub fn set_word(&mut self, offset: u32, value: u64) {
        self.words[offset as usize] = value;
    }

    /// Copies `words` words starting at `src_offset` in `src` into this
    /// region at `dst_offset`. Both ranges must be in bounds.
    pub fn copy_from(&mut self, src: &Region, src_offset: u32, dst_offset: u32, words: usize) {
        let s = src_offset as usize;
        let d = dst_offset as usize;
        self.words[d..d + words].copy_from_slice(&src.words[s..s + words]);
    }
}

impl Default for Region {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocates_until_full() {
        let mut r = Region::new();
        r.assign(RegionKind::Eden, 8, 1);
        assert_eq!(r.bump(3), Some(0));
        assert_eq!(r.bump(3), Some(3));
        assert_eq!(r.bump(3), None);
        assert_eq!(r.bump(2), Some(6));
        assert_eq!(r.top(), 8);
    }

    #[test]
    fn release_resets_but_keeps_memory() {
        let mut r = Region::new();
        r.assign(RegionKind::Old, 16, 1);
        r.bump(10).unwrap();
        r.release();
        assert_eq!(r.kind, RegionKind::Free);
        assert_eq!(r.top(), 0);
        assert_eq!(r.capacity_words(), 16);
    }

    #[test]
    fn unbump_returns_the_tail() {
        let mut r = Region::new();
        r.assign(RegionKind::Eden, 8, 1);
        assert_eq!(r.bump(6), Some(0));
        r.unbump(2);
        assert_eq!(r.top(), 2);
        assert_eq!(r.bump(6), Some(2));
    }

    #[test]
    fn words_read_back_what_was_written() {
        let mut r = Region::new();
        r.assign(RegionKind::Eden, 4, 1);
        r.set_word(2, 0xDEAD_BEEF);
        assert_eq!(r.word(2), 0xDEAD_BEEF);
    }

    #[test]
    fn copy_from_moves_object_images() {
        let mut a = Region::new();
        let mut b = Region::new();
        a.assign(RegionKind::Eden, 8, 1);
        b.assign(RegionKind::Old, 8, 1);
        for i in 0..4 {
            a.set_word(i, i as u64 + 100);
        }
        b.copy_from(&a, 1, 5, 3);
        assert_eq!(b.word(5), 101);
        assert_eq!(b.word(7), 103);
    }

    #[test]
    fn garbage_accounting() {
        let mut r = Region::new();
        r.assign(RegionKind::Old, 100, 1);
        r.bump(50).unwrap();
        r.live_bytes = 100; // 100 bytes live out of 400 used
        assert_eq!(r.used_bytes(), 400);
        assert_eq!(r.garbage_bytes(), 300);
    }
}
