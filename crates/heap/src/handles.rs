//! GC-safe root handles.
//!
//! Guest programs never hold raw [`ObjectRef`]s across a safepoint: objects
//! move when collectors evacuate regions. Instead they hold [`Handle`]s —
//! indices into a table owned by the runtime. The collector treats the
//! table as the root set and rewrites it after moving objects, exactly like
//! JNI global references.

use crate::object::ObjectRef;

/// An index into the [`HandleTable`]; stable across collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle(pub u32);

/// The root-set table mapping handles to current object locations.
#[derive(Debug, Clone, Default)]
pub struct HandleTable {
    slots: Vec<ObjectRef>,
    free: Vec<u32>,
    live: usize,
}

impl HandleTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a handle referring to `obj`.
    pub fn create(&mut self, obj: ObjectRef) -> Handle {
        self.live += 1;
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = obj;
            Handle(i)
        } else {
            self.slots.push(obj);
            Handle((self.slots.len() - 1) as u32)
        }
    }

    /// Releases a handle; its object becomes collectable (unless reachable
    /// elsewhere).
    ///
    /// # Panics
    ///
    /// Panics if the handle was already released.
    pub fn drop_handle(&mut self, h: Handle) {
        let slot = &mut self.slots[h.0 as usize];
        assert!(!slot.is_null(), "double release of handle {h:?}");
        *slot = ObjectRef::NULL;
        self.free.push(h.0);
        self.live -= 1;
    }

    /// The current location of the object behind `h`.
    ///
    /// # Panics
    ///
    /// Panics if the handle was released.
    pub fn get(&self, h: Handle) -> ObjectRef {
        let r = self.slots[h.0 as usize];
        assert!(!r.is_null(), "use of released handle {h:?}");
        r
    }

    /// Re-points a live handle at a different object.
    pub fn set(&mut self, h: Handle, obj: ObjectRef) {
        assert!(!obj.is_null(), "cannot point a handle at NULL; use drop_handle");
        self.slots[h.0 as usize] = obj;
    }

    /// Number of live handles.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Iterates mutable references to every live root slot (collector use).
    pub fn roots_mut(&mut self) -> impl Iterator<Item = &mut ObjectRef> {
        self.slots.iter_mut().filter(|r| !r.is_null())
    }

    /// Iterates every live root slot.
    pub fn roots(&self) -> impl Iterator<Item = ObjectRef> + '_ {
        self.slots.iter().copied().filter(|r| !r.is_null())
    }

    /// Iterates `(handle, object)` over live entries (collector root
    /// processing).
    pub fn entries(&self) -> impl Iterator<Item = (Handle, ObjectRef)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_null())
            .map(|(i, r)| (Handle(i as u32), *r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionId;

    fn obj(r: u32, o: u32) -> ObjectRef {
        ObjectRef::new(RegionId(r), o)
    }

    #[test]
    fn create_get_drop() {
        let mut t = HandleTable::new();
        let h = t.create(obj(1, 2));
        assert_eq!(t.get(h), obj(1, 2));
        assert_eq!(t.live(), 1);
        t.drop_handle(h);
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn slots_are_recycled() {
        let mut t = HandleTable::new();
        let a = t.create(obj(1, 0));
        t.drop_handle(a);
        let b = t.create(obj(2, 0));
        assert_eq!(a.0, b.0, "freed slot should be reused");
    }

    #[test]
    #[should_panic(expected = "use of released handle")]
    fn get_after_drop_panics() {
        let mut t = HandleTable::new();
        let h = t.create(obj(1, 0));
        t.drop_handle(h);
        t.get(h);
    }

    #[test]
    fn roots_mut_visits_only_live() {
        let mut t = HandleTable::new();
        let _a = t.create(obj(1, 0));
        let b = t.create(obj(2, 0));
        t.drop_handle(b);
        let c = t.create(obj(3, 0));
        let mut seen: Vec<ObjectRef> = t.roots().collect();
        seen.sort();
        assert_eq!(seen, vec![obj(1, 0), obj(3, 0)]);
        // Mutation through roots_mut is visible via get.
        for r in t.roots_mut() {
            if *r == obj(3, 0) {
                *r = obj(9, 9);
            }
        }
        assert_eq!(t.get(c), obj(9, 9));
    }
}
