//! Remembered sets.
//!
//! Evacuating a region requires finding every reference into it from
//! outside the collection set without scanning the whole heap. As in G1,
//! each region keeps a *remembered set* of heap slots that held an
//! incoming cross-region reference at write-barrier time. Entries may be
//! stale (the slot has since been overwritten or its holder died); the
//! evacuator re-validates each slot before using it.

use std::collections::HashSet;

use crate::object::ObjectRef;
use crate::region::RegionId;

/// A heap slot: a word location `(region, word offset)` holding a
/// reference field, stamped with the holding region's assignment epoch.
///
/// The epoch makes stale entries detectable: if the region was released
/// and recycled since the entry was recorded, its epoch differs and the
/// evacuator must not dereference (let alone write through) the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotAddr {
    /// Region holding the slot.
    pub region: RegionId,
    /// Word offset of the slot within the region.
    pub offset: u32,
    /// `Region::assigned_epoch` of the holding region at record time.
    pub epoch: u64,
}

/// The remembered set of one region: slots that pointed into it.
#[derive(Debug, Clone, Default)]
pub struct RememberedSet {
    slots: HashSet<SlotAddr>,
}

impl RememberedSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `slot` held a reference into this region.
    pub fn record(&mut self, slot: SlotAddr) {
        self.slots.insert(slot);
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// Number of recorded slots (possibly stale).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slot is recorded.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates all recorded slots.
    pub fn iter(&self) -> impl Iterator<Item = &SlotAddr> {
        self.slots.iter()
    }

    /// Drains the slots into a vector (used at evacuation start).
    pub fn take(&mut self) -> Vec<SlotAddr> {
        self.slots.drain().collect()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> u64 {
        (self.slots.capacity() * std::mem::size_of::<SlotAddr>()) as u64
    }
}

/// Decides whether a reference store needs a remembered-set entry: the
/// source and destination live in different regions and the value is not
/// null.
pub fn needs_barrier(src_region: RegionId, value: ObjectRef) -> bool {
    !value.is_null() && value.region() != src_region
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_idempotent() {
        let mut rs = RememberedSet::new();
        let s = SlotAddr { region: RegionId(1), offset: 42, epoch: 1 };
        rs.record(s);
        rs.record(s);
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn take_drains() {
        let mut rs = RememberedSet::new();
        rs.record(SlotAddr { region: RegionId(1), offset: 1, epoch: 1 });
        rs.record(SlotAddr { region: RegionId(2), offset: 2, epoch: 1 });
        let v = rs.take();
        assert_eq!(v.len(), 2);
        assert!(rs.is_empty());
    }

    #[test]
    fn barrier_filter() {
        let here = RegionId(3);
        assert!(!needs_barrier(here, ObjectRef::NULL));
        assert!(!needs_barrier(here, ObjectRef::new(RegionId(3), 8)));
        assert!(needs_barrier(here, ObjectRef::new(RegionId(4), 8)));
    }
}
