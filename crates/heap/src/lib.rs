//! Region-based managed heap for the ROLP reproduction.
//!
//! This crate is the substrate the paper takes for granted: the HotSpot
//! heap. Objects live in word-addressed regions, carry the exact 64-bit
//! header of the paper's Fig. 2 (lock bits, biased-lock bit, 4-bit age,
//! identity hash, and the 32 bits ROLP borrows for the allocation context),
//! and are really traced and really copied during collection.
//!
//! Layout of an object (in 8-byte words):
//!
//! ```text
//! word 0   header            (see [`header`])
//! word 1   size/refs/class   (size_words:u32 | ref_words:u16 | class:u16)
//! word 2.. ref fields        (packed [`ObjectRef`]s, `NULL` allowed)
//! ...      data words        (opaque payload)
//! ```
//!
//! The crate provides mechanism only; *policy* (when to collect, where to
//! copy) lives in `rolp-gc`. Mutator roots are indirected through a
//! [`HandleTable`] so collectors can move objects without the guest program
//! holding stale pointers.

pub mod claim;
pub mod class;
pub mod handles;
pub mod header;
pub mod heap;
pub mod object;
pub mod region;
pub mod remset;
pub mod stats;
pub mod verify;

pub use claim::{ChunkClaimer, RegionClaimer};
pub use class::{ClassId, ClassTable};
pub use handles::{Handle, HandleTable};
pub use header::ObjectHeader;
pub use heap::{
    AllocFailure, Heap, HeapConfig, HeapStats, SpaceKind, TlabAlloc, DEFAULT_TLAB_BYTES,
};
pub use object::ObjectRef;
pub use region::{Region, RegionId, RegionKind};
pub use stats::{HeapUsage, SpaceUsage};

/// Formats a byte count in KiB/MiB for the stats renderer.
pub(crate) fn fmt_kib(bytes: u64) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.1}MiB", bytes as f64 / (1024.0 * 1024.0))
    } else {
        format!("{:.1}KiB", bytes as f64 / 1024.0)
    }
}
