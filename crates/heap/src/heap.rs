//! The heap: region management, object allocation, and field access.
//!
//! The heap provides mechanism only. Collectors (in `rolp-gc`) decide when
//! to collect and where survivors go; guest programs (via `rolp-vm`) decide
//! what to allocate. The heap enforces the object layout, performs the
//! write barrier bookkeeping, and tracks committed/used bytes.

use crate::class::{ClassId, ClassTable};
use crate::handles::HandleTable;
use crate::header::ObjectHeader;
use crate::object::ObjectRef;
use crate::region::{Region, RegionId, RegionKind};
use crate::remset::{needs_barrier, SlotAddr};

/// Words of per-object overhead (header word + info word).
pub const OBJECT_HEADER_WORDS: u32 = 2;

/// Default TLAB size in bytes (1024 words). Chunks are additionally
/// capped at the current region's remaining space, so small-region test
/// heaps work unchanged.
pub const DEFAULT_TLAB_BYTES: usize = 8 * 1024;

/// Heap sizing parameters.
#[derive(Debug, Clone)]
pub struct HeapConfig {
    /// Bytes per region (must be a multiple of 8). Default 256 KiB — the
    /// paper's 1 MiB G1 regions scaled by the default 1/16 experiment
    /// scale, keeping the regions-per-heap ratio.
    pub region_bytes: usize,
    /// Total heap budget in bytes (`-Xmx`).
    pub max_heap_bytes: u64,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig { region_bytes: 256 * 1024, max_heap_bytes: 64 * 1024 * 1024 }
    }
}

/// The space an allocation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpaceKind {
    /// Young-generation eden.
    Eden,
    /// Young-generation survivor space (GC-internal allocations).
    Survivor,
    /// Tenured space.
    Old,
    /// NG2C dynamic generation `g` (1..=14).
    Dynamic(u8),
}

impl SpaceKind {
    /// The region kind backing this space.
    pub fn region_kind(self) -> RegionKind {
        match self {
            SpaceKind::Eden => RegionKind::Eden,
            SpaceKind::Survivor => RegionKind::Survivor,
            SpaceKind::Old => RegionKind::Old,
            SpaceKind::Dynamic(g) => RegionKind::Dynamic(g),
        }
    }

    fn slot(self) -> usize {
        match self {
            SpaceKind::Eden => 0,
            SpaceKind::Survivor => 1,
            SpaceKind::Old => 2,
            SpaceKind::Dynamic(g) => {
                assert!((1..=14).contains(&g), "dynamic generation out of range");
                2 + g as usize
            }
        }
    }
}

/// Why an allocation could not be satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocFailure {
    /// No free region is available; the caller should trigger a collection
    /// and retry.
    NeedsGc,
    /// The request can never fit (larger than the whole heap budget).
    TooLarge,
}

/// Cumulative allocation statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeapStats {
    /// Objects allocated.
    pub allocations: u64,
    /// Bytes allocated (including per-object overhead).
    pub bytes_allocated: u64,
    /// Humongous objects allocated.
    pub humongous_allocations: u64,
    /// Write-barrier remembered-set records.
    pub barrier_records: u64,
    /// Objects copied by collectors through [`Heap::copy_object`].
    pub objects_copied: u64,
    /// Bytes copied by collectors.
    pub bytes_copied: u64,
    /// TLAB refills (chunk carves) through [`Heap::tlab_alloc`].
    pub tlab_refills: u64,
    /// Filler objects stamped by TLAB retirement (dead space that could
    /// not be returned to its region's frontier).
    pub tlab_fillers: u64,
}

/// A thread-local allocation buffer: a private chunk carved from a
/// region's frontier, bump-allocated without touching shared state.
#[derive(Debug, Clone, Copy)]
struct Tlab {
    region: RegionId,
    /// Next free word in the buffer.
    cursor: u32,
    /// One past the last word of the buffer.
    limit: u32,
}

/// Outcome of a [`Heap::tlab_alloc`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlabAlloc {
    /// Satisfied from the thread's existing buffer (the fast path: one
    /// private bump, no shared state touched).
    Hit(ObjectRef),
    /// Satisfied after carving a fresh chunk from the space's current
    /// region (the "refill under a lock" path in a real VM — callers
    /// charge this as a stall).
    Refilled(ObjectRef),
    /// Not TLAB-eligible (TLABs disabled, object larger than a chunk, or
    /// humongous) or no chunk could be carved. The caller falls through
    /// to [`Heap::alloc_in`]; any buffer the slow path would bump past
    /// has already been retired, so placement matches the shared path.
    Miss,
}

/// The managed heap.
#[derive(Debug)]
pub struct Heap {
    config: HeapConfig,
    regions: Vec<Region>,
    free: Vec<RegionId>,
    /// Current allocation region per space (eden, survivor, old, dyn 1..14).
    current: [Option<RegionId>; 17],
    /// Guest class metadata.
    pub classes: ClassTable,
    /// Root-set handles.
    pub handles: HandleTable,
    epoch: u64,
    stats: HeapStats,
    hash_seed: u64,
    /// O(1) region counts per kind (see [`kind_slot`]).
    kind_counts: [u32; 20],
    /// TLAB chunk size in words; 0 disables TLAB allocation.
    tlab_words: usize,
    /// Per-thread, per-space allocation buffers (grown on demand).
    tlabs: Vec<[Option<Tlab>; 17]>,
}

/// Dense index for [`RegionKind`] used by the O(1) counters.
fn kind_slot(kind: RegionKind) -> usize {
    match kind {
        RegionKind::Free => 0,
        RegionKind::Eden => 1,
        RegionKind::Survivor => 2,
        RegionKind::Old => 3,
        RegionKind::Dynamic(g) => 3 + g as usize, // 4..=17
        RegionKind::Humongous => 18,
        RegionKind::HumongousCont => 19,
    }
}

impl Heap {
    /// Creates a heap with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the region size is not a positive multiple of 8 or the
    /// heap budget is smaller than one region.
    pub fn new(config: HeapConfig) -> Self {
        assert!(config.region_bytes >= 64 && config.region_bytes.is_multiple_of(8));
        let max_regions = (config.max_heap_bytes / config.region_bytes as u64) as usize;
        assert!(max_regions >= 1, "heap budget smaller than one region");
        let regions: Vec<Region> = (0..max_regions).map(|_| Region::new()).collect();
        let free = (0..max_regions as u32).rev().map(RegionId).collect();
        Heap {
            config,
            regions,
            free,
            current: [None; 17],
            classes: ClassTable::new(),
            handles: HandleTable::new(),
            epoch: 0,
            stats: HeapStats::default(),
            hash_seed: 0x9E37_79B9_7F4A_7C15,
            kind_counts: {
                let mut c = [0u32; 20];
                c[0] = max_regions as u32;
                c
            },
            tlab_words: DEFAULT_TLAB_BYTES / 8,
            tlabs: Vec::new(),
        }
    }

    /// Number of regions currently of `kind`, in O(1).
    pub fn num_of_kind(&self, kind: RegionKind) -> usize {
        self.kind_counts[kind_slot(kind)] as usize
    }

    /// Region size in words.
    pub fn region_words(&self) -> usize {
        self.config.region_bytes / 8
    }

    /// Region size in bytes.
    pub fn region_bytes(&self) -> usize {
        self.config.region_bytes
    }

    /// Total number of regions (free and assigned).
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Number of regions currently on the free list.
    pub fn free_regions(&self) -> usize {
        self.free.len()
    }

    /// The configured heap budget in bytes.
    pub fn max_heap_bytes(&self) -> u64 {
        self.config.max_heap_bytes
    }

    /// Bytes of committed backing memory (regions that have ever been
    /// assigned keep their memory, as with pre-touched heaps).
    pub fn committed_bytes(&self) -> u64 {
        self.regions.iter().map(|r| (r.capacity_words() * 8) as u64).sum()
    }

    /// Bytes occupied by objects in live (non-free) regions.
    pub fn used_bytes(&self) -> u64 {
        self.regions
            .iter()
            .filter(|r| !matches!(r.kind, RegionKind::Free))
            .map(Region::used_bytes)
            .sum()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Shared access to a region.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.0 as usize]
    }

    /// Mutable access to a region.
    pub fn region_mut(&mut self, id: RegionId) -> &mut Region {
        &mut self.regions[id.0 as usize]
    }

    /// Iterates `(id, region)` over all regions.
    pub fn regions(&self) -> impl Iterator<Item = (RegionId, &Region)> {
        self.regions.iter().enumerate().map(|(i, r)| (RegionId(i as u32), r))
    }

    /// Ids of regions currently of the given kind.
    pub fn regions_of_kind(&self, kind: RegionKind) -> Vec<RegionId> {
        self.regions().filter(|(_, r)| r.kind == kind).map(|(id, _)| id).collect()
    }

    fn take_free_region(&mut self, kind: RegionKind, words: usize) -> Option<RegionId> {
        let id = self.free.pop()?;
        self.epoch += 1;
        let epoch = self.epoch;
        self.regions[id.0 as usize].assign(kind, words, epoch);
        self.kind_counts[kind_slot(RegionKind::Free)] -= 1;
        self.kind_counts[kind_slot(kind)] += 1;
        Some(id)
    }

    /// Returns a region to the free list.
    ///
    /// # Panics
    ///
    /// Panics if the region is already free.
    pub fn release_region(&mut self, id: RegionId) {
        let r = &mut self.regions[id.0 as usize];
        assert!(!matches!(r.kind, RegionKind::Free), "double release of region {id:?}");
        let old_kind = r.kind;
        r.release();
        self.kind_counts[kind_slot(old_kind)] -= 1;
        self.kind_counts[kind_slot(RegionKind::Free)] += 1;
        // Drop it from any current-allocation slot.
        for c in &mut self.current {
            if *c == Some(id) {
                *c = None;
            }
        }
        // Invalidate any TLAB still carved from it (the backing words are
        // being recycled; no filler needed for a freed region).
        for set in &mut self.tlabs {
            for tl in set.iter_mut() {
                if tl.map(|t| t.region) == Some(id) {
                    *tl = None;
                }
            }
        }
        self.free.push(id);
    }

    /// Commits backing memory for up to `n` additional free regions
    /// without assigning them (concurrent collectors pre-commit allocation
    /// headroom for the mutator allocation that proceeds during their
    /// cycles). Counted by [`Heap::committed_bytes`].
    pub fn commit_headroom(&mut self, n: usize) {
        let words = self.region_words();
        let mut committed = 0;
        for id in self.free.clone() {
            if committed >= n {
                break;
            }
            let r = &mut self.regions[id.0 as usize];
            if r.capacity_words() != words {
                // Touch the backing memory, as `assign` would, then return
                // the region to the free state (kind counts unchanged).
                r.assign(RegionKind::Eden, words, 0);
                r.release();
                committed += 1;
            }
        }
    }

    /// Detaches the current allocation region of `space` so subsequent
    /// allocations start a fresh region. Collectors call this when forming
    /// a collection set.
    pub fn retire_current(&mut self, space: SpaceKind) {
        self.current[space.slot()] = None;
    }

    /// Detaches every current allocation region.
    pub fn retire_all_current(&mut self) {
        self.current = [None; 17];
    }

    // --- TLABs ---

    /// Sets the TLAB chunk size in bytes (0 disables TLAB allocation).
    /// Retires any live buffers so a mid-run change cannot strand carved
    /// space.
    pub fn set_tlab_bytes(&mut self, bytes: usize) {
        self.retire_all_tlabs();
        self.tlab_words = bytes / 8;
    }

    /// The configured TLAB chunk size in bytes (0 when disabled).
    pub fn tlab_bytes(&self) -> usize {
        self.tlab_words * 8
    }

    /// Allocates an object in `space` through `thread`'s allocation
    /// buffer, if possible. See [`TlabAlloc`] for the outcomes; on
    /// [`TlabAlloc::Miss`] the caller should fall through to
    /// [`Heap::alloc_in`], which will then place the object exactly where
    /// the shared bump path would have (a buffer the slow path would
    /// have to bump past is retired before `Miss` is returned).
    ///
    /// With one mutator thread, placement is bit-identical to calling
    /// [`Heap::alloc_in`] directly: chunks are carved from the current
    /// region's frontier, capped at its remaining space (so no usable
    /// word is skipped), and retirement rolls the frontier back when the
    /// buffer is the last carve. With several threads interleaving carves,
    /// retirement stamps [filler words] over dead space instead, keeping
    /// every region parsable for cursor walks.
    ///
    /// [filler words]: ObjectHeader::filler_word
    pub fn tlab_alloc(
        &mut self,
        thread: u32,
        space: SpaceKind,
        class: ClassId,
        ref_words: u16,
        data_words: u32,
        header: ObjectHeader,
    ) -> TlabAlloc {
        let size_words = (OBJECT_HEADER_WORDS + ref_words as u32 + data_words) as usize;
        let t = thread as usize;
        let slot = space.slot();
        if self.tlab_words == 0
            || size_words > self.tlab_words
            || size_words > self.region_words() / 2
        {
            // Humongous objects bypass TLABs entirely (they get dedicated
            // regions; the buffer stays valid). An oversized-but-regular
            // object will bump the shared frontier, so the buffer must be
            // retired first to roll the frontier back to the reference
            // position.
            if size_words <= self.region_words() / 2 {
                self.retire_tlab(t, slot);
            }
            return TlabAlloc::Miss;
        }
        if t >= self.tlabs.len() {
            self.tlabs.resize(t + 1, [None; 17]);
        }
        // Fast path: private bump inside the buffer.
        if let Some(tlab) = &mut self.tlabs[t][slot] {
            if (tlab.cursor as usize) + size_words <= tlab.limit as usize {
                let (region, offset) = (tlab.region, tlab.cursor);
                tlab.cursor += size_words as u32;
                return TlabAlloc::Hit(
                    self.init_object(region, offset, class, ref_words, data_words, header),
                );
            }
        }
        // Refill: retire the exhausted buffer, carve a fresh chunk.
        self.retire_tlab(t, slot);
        if self.refill_tlab(t, slot, space, size_words) {
            self.stats.tlab_refills += 1;
            let tlab = self.tlabs[t][slot].as_mut().expect("refill installed a buffer");
            let (region, offset) = (tlab.region, tlab.cursor);
            tlab.cursor += size_words as u32;
            TlabAlloc::Refilled(
                self.init_object(region, offset, class, ref_words, data_words, header),
            )
        } else {
            TlabAlloc::Miss
        }
    }

    /// Carves a chunk able to hold `size_words` into a fresh buffer for
    /// `(t, slot)`. Returns false if no region can provide one (the
    /// caller's slow path will report [`AllocFailure::NeedsGc`]).
    fn refill_tlab(&mut self, t: usize, slot: usize, space: SpaceKind, size_words: usize) -> bool {
        let region_words = self.region_words();
        // Carve from the space's current region. The chunk is capped at
        // the region's remaining space, so the carve succeeds exactly
        // when a shared bump of `size_words` would have.
        if let Some(id) = self.current[slot] {
            let r = &mut self.regions[id.0 as usize];
            let chunk = self.tlab_words.min(r.capacity_words() - r.top());
            if chunk >= size_words {
                let at = r.bump(chunk).expect("capped carve fits");
                self.tlabs[t][slot] =
                    Some(Tlab { region: id, cursor: at, limit: at + chunk as u32 });
                return true;
            }
        }
        // Current region absent or too full: take a fresh one — again
        // exactly when the shared path would.
        let Some(id) = self.take_free_region(space.region_kind(), region_words) else {
            return false;
        };
        self.current[slot] = Some(id);
        let chunk = self.tlab_words.min(region_words);
        debug_assert!(chunk >= size_words, "eligibility check bounds the object size");
        let at = self.regions[id.0 as usize].bump(chunk).expect("fresh region fits the carve");
        self.tlabs[t][slot] = Some(Tlab { region: id, cursor: at, limit: at + chunk as u32 });
        true
    }

    /// Retires one buffer: returns the unused tail to the region when the
    /// buffer is the last carve (restoring the exact shared-path
    /// frontier), otherwise stamps a filler word over it.
    fn retire_tlab(&mut self, t: usize, slot: usize) {
        if t >= self.tlabs.len() {
            return;
        }
        let Some(tlab) = self.tlabs[t][slot].take() else { return };
        if tlab.cursor == tlab.limit {
            return; // fully consumed, nothing to give back
        }
        let r = &mut self.regions[tlab.region.0 as usize];
        if r.top() == tlab.limit as usize {
            r.unbump(tlab.cursor);
        } else {
            let gap = (tlab.limit - tlab.cursor) as usize;
            r.set_word(tlab.cursor, ObjectHeader::filler_word(gap));
            self.stats.tlab_fillers += 1;
        }
    }

    /// Retires every live allocation buffer. Collectors call this at
    /// safepoint entry so regions are parsable (and, single-threaded,
    /// frontier-exact) before marking, evacuation, or verification.
    pub fn retire_all_tlabs(&mut self) {
        for t in 0..self.tlabs.len() {
            for slot in 0..17 {
                self.retire_tlab(t, slot);
            }
        }
    }

    /// Live (un-retired) buffer gaps as `(region, cursor, limit)` spans.
    /// The words inside a span are uninitialized until the owning thread
    /// allocates over them, so heap walkers running between safepoints
    /// must skip them just like retirement fillers.
    pub fn live_tlab_gaps(&self) -> Vec<(RegionId, u32, u32)> {
        let mut gaps = Vec::new();
        for per_thread in &self.tlabs {
            for tlab in per_thread.iter().flatten() {
                if tlab.cursor < tlab.limit {
                    gaps.push((tlab.region, tlab.cursor, tlab.limit));
                }
            }
        }
        gaps
    }

    /// Allocates an object in `space`.
    ///
    /// `ref_words` reference fields (initialized to `NULL`) are followed by
    /// `data_words` opaque words (zeroed). The supplied `header` is
    /// installed verbatim (collaborating profilers pre-encode the
    /// allocation context into it).
    pub fn alloc_in(
        &mut self,
        space: SpaceKind,
        class: ClassId,
        ref_words: u16,
        data_words: u32,
        header: ObjectHeader,
    ) -> Result<ObjectRef, AllocFailure> {
        let size_words = OBJECT_HEADER_WORDS + ref_words as u32 + data_words;
        let region_words = self.region_words();

        // Humongous objects get a dedicated, exactly sized region.
        if size_words as usize > region_words / 2 {
            if (size_words as u64) * 8 > self.config.max_heap_bytes {
                return Err(AllocFailure::TooLarge);
            }
            let id = self
                .take_free_region(RegionKind::Humongous, size_words as usize)
                .ok_or(AllocFailure::NeedsGc)?;
            let region = &mut self.regions[id.0 as usize];
            let offset = region.bump(size_words as usize).expect("sized region must fit");
            self.stats.humongous_allocations += 1;
            return Ok(self.init_object(id, offset, class, ref_words, data_words, header));
        }

        // Fast path: bump in the space's current region.
        let slot = space.slot();
        if let Some(id) = self.current[slot] {
            if let Some(offset) = self.regions[id.0 as usize].bump(size_words as usize) {
                return Ok(self.init_object(id, offset, class, ref_words, data_words, header));
            }
        }
        // Slow path: grab a fresh region.
        let id = self
            .take_free_region(space.region_kind(), region_words)
            .ok_or(AllocFailure::NeedsGc)?;
        self.current[slot] = Some(id);
        let offset = self.regions[id.0 as usize]
            .bump(size_words as usize)
            .expect("fresh region must fit a non-humongous object");
        Ok(self.init_object(id, offset, class, ref_words, data_words, header))
    }

    fn init_object(
        &mut self,
        region: RegionId,
        offset: u32,
        class: ClassId,
        ref_words: u16,
        data_words: u32,
        header: ObjectHeader,
    ) -> ObjectRef {
        let size_words = OBJECT_HEADER_WORDS + ref_words as u32 + data_words;
        let info = size_words as u64 | ((ref_words as u64) << 32) | ((class.0 as u64) << 48);
        let r = &mut self.regions[region.0 as usize];
        r.set_word(offset, header.raw());
        r.set_word(offset + 1, info);
        for i in 0..ref_words as u32 {
            r.set_word(offset + OBJECT_HEADER_WORDS + i, ObjectRef::NULL.raw());
        }
        for j in 0..data_words {
            r.set_word(offset + OBJECT_HEADER_WORDS + ref_words as u32 + j, 0);
        }
        self.classes.note_allocation(class);
        self.stats.allocations += 1;
        self.stats.bytes_allocated += size_words as u64 * 8;
        ObjectRef::new(region, offset)
    }

    /// A fresh pseudo-random identity hash (deterministic per heap).
    pub fn next_identity_hash(&mut self) -> u32 {
        // SplitMix64 step; low 24 bits are what the header keeps.
        self.hash_seed = self.hash_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.hash_seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as u32
    }

    // --- Object access ---

    /// Reads the header of `obj`.
    #[inline]
    pub fn header(&self, obj: ObjectRef) -> ObjectHeader {
        ObjectHeader(self.region(obj.region()).word(obj.offset()))
    }

    /// Overwrites the header of `obj`.
    #[inline]
    pub fn set_header(&mut self, obj: ObjectRef, header: ObjectHeader) {
        let (region, offset) = (obj.region(), obj.offset());
        self.region_mut(region).set_word(offset, header.raw());
    }

    /// Total size of `obj` in words, including the two overhead words.
    #[inline]
    pub fn size_words(&self, obj: ObjectRef) -> u32 {
        self.info(obj) as u32
    }

    /// Number of reference fields of `obj`.
    #[inline]
    pub fn ref_words(&self, obj: ObjectRef) -> u16 {
        (self.info(obj) >> 32) as u16
    }

    /// Class of `obj`.
    #[inline]
    pub fn class_of(&self, obj: ObjectRef) -> ClassId {
        ClassId((self.info(obj) >> 48) as u16)
    }

    #[inline]
    fn info(&self, obj: ObjectRef) -> u64 {
        self.region(obj.region()).word(obj.offset() + 1)
    }

    /// Reads reference field `i` of `obj`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `i` is out of bounds.
    #[inline]
    pub fn get_ref(&self, obj: ObjectRef, i: u16) -> ObjectRef {
        debug_assert!(i < self.ref_words(obj), "ref field index out of bounds");
        let off = obj.offset() + OBJECT_HEADER_WORDS + i as u32;
        ObjectRef::from_raw(self.region(obj.region()).word(off))
    }

    /// Writes reference field `i` of `obj`, applying the write barrier
    /// (cross-region stores are recorded in the target region's remembered
    /// set, G1-style).
    #[inline]
    pub fn set_ref(&mut self, obj: ObjectRef, i: u16, value: ObjectRef) {
        debug_assert!(i < self.ref_words(obj), "ref field index out of bounds");
        let src_region = obj.region();
        let off = obj.offset() + OBJECT_HEADER_WORDS + i as u32;
        self.region_mut(src_region).set_word(off, value.raw());
        if needs_barrier(src_region, value) {
            let epoch = self.region(src_region).assigned_epoch;
            let slot = SlotAddr { region: src_region, offset: off, epoch };
            self.regions[value.region().0 as usize].rset.record(slot);
            self.stats.barrier_records += 1;
        }
    }

    /// Reads data word `j` of `obj`.
    #[inline]
    pub fn get_data(&self, obj: ObjectRef, j: u32) -> u64 {
        let base = obj.offset() + OBJECT_HEADER_WORDS + self.ref_words(obj) as u32;
        self.region(obj.region()).word(base + j)
    }

    /// Writes data word `j` of `obj`.
    #[inline]
    pub fn set_data(&mut self, obj: ObjectRef, j: u32, value: u64) {
        let base = obj.offset() + OBJECT_HEADER_WORDS + self.ref_words(obj) as u32;
        let region = obj.region();
        self.region_mut(region).set_word(base + j, value);
    }

    /// Follows forwarding: the current location of the object originally at
    /// `obj` (identity if not forwarded).
    pub fn resolve(&self, obj: ObjectRef) -> ObjectRef {
        let h = self.header(obj);
        if h.is_forwarded() {
            h.forwardee()
        } else {
            obj
        }
    }

    /// Copies `obj` into `to_space`, leaving a forwarding pointer behind.
    ///
    /// Returns the new location. If `obj` is already forwarded, returns the
    /// existing forwardee without copying (so concurrent discovery through
    /// multiple paths is idempotent).
    pub fn copy_object(
        &mut self,
        obj: ObjectRef,
        to_space: SpaceKind,
    ) -> Result<ObjectRef, AllocFailure> {
        let header = self.header(obj);
        if header.is_forwarded() {
            return Ok(header.forwardee());
        }
        let size = self.size_words(obj) as usize;
        let region_words = self.region_words();

        // Reserve space in the target.
        let (dst_region, dst_offset) = if size > region_words / 2 {
            let id =
                self.take_free_region(RegionKind::Humongous, size).ok_or(AllocFailure::NeedsGc)?;
            (id, self.regions[id.0 as usize].bump(size).expect("sized region"))
        } else {
            let slot = to_space.slot();
            let existing = self.current[slot]
                .and_then(|id| self.regions[id.0 as usize].bump(size).map(|off| (id, off)));
            match existing {
                Some(pair) => pair,
                None => {
                    let id = self
                        .take_free_region(to_space.region_kind(), region_words)
                        .ok_or(AllocFailure::NeedsGc)?;
                    self.current[slot] = Some(id);
                    let off = self.regions[id.0 as usize].bump(size).expect("fresh region");
                    (id, off)
                }
            }
        };

        // Copy the object image.
        let src_region = obj.region();
        if src_region == dst_region {
            // Cannot happen for a well-formed collection set (the target
            // allocation region is never in the collection set), but stay
            // correct anyway via a bounce buffer.
            let tmp: Vec<u64> =
                (0..size as u32).map(|i| self.region(src_region).word(obj.offset() + i)).collect();
            for (i, w) in tmp.into_iter().enumerate() {
                self.region_mut(dst_region).set_word(dst_offset + i as u32, w);
            }
        } else {
            let (a, b) = (src_region.0 as usize, dst_region.0 as usize);
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let (left, right) = self.regions.split_at_mut(hi);
            let (src, dst) =
                if a < b { (&left[lo], &mut right[0]) } else { (&right[0], &mut left[lo]) };
            dst.copy_from(src, obj.offset(), dst_offset, size);
        }

        let new_ref = ObjectRef::new(dst_region, dst_offset);
        // Install forwarding in the old copy.
        self.set_header(obj, ObjectHeader::forward_to(new_ref));
        self.regions[dst_region.0 as usize].live_bytes += size as u64 * 8;
        self.stats.objects_copied += 1;
        self.stats.bytes_copied += size as u64 * 8;
        Ok(new_ref)
    }

    /// Iterates the objects laid out in region `id`, in address order,
    /// yielding possibly-forwarded object refs (the info word survives
    /// forwarding, so walking is always possible).
    pub fn objects_in_region(&self, id: RegionId) -> ObjectWalk<'_> {
        ObjectWalk { heap: self, region: id, cursor: 0 }
    }
}

/// Iterator over the objects of one region (see
/// [`Heap::objects_in_region`]).
pub struct ObjectWalk<'a> {
    heap: &'a Heap,
    region: RegionId,
    cursor: u32,
}

impl Iterator for ObjectWalk<'_> {
    type Item = ObjectRef;

    fn next(&mut self) -> Option<ObjectRef> {
        let r = self.heap.region(self.region);
        loop {
            if (self.cursor as usize) >= r.top() {
                return None;
            }
            // TLAB retirement fillers are dead space, not objects: skip.
            let word = r.word(self.cursor);
            if ObjectHeader::is_filler_word(word) {
                self.cursor += ObjectHeader::filler_size_words(word) as u32;
                continue;
            }
            let obj = ObjectRef::new(self.region, self.cursor);
            let size = self.heap.size_words(obj);
            debug_assert!(size >= OBJECT_HEADER_WORDS, "corrupt object info word");
            self.cursor += size;
            return Some(obj);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_heap() -> Heap {
        Heap::new(HeapConfig { region_bytes: 1024, max_heap_bytes: 16 * 1024 })
    }

    fn alloc(heap: &mut Heap, space: SpaceKind, refs: u16, data: u32) -> ObjectRef {
        let class = ClassId(0);
        let hash = heap.next_identity_hash();
        heap.alloc_in(space, class, refs, data, ObjectHeader::new(hash)).unwrap()
    }

    fn heap_with_class() -> Heap {
        let mut h = small_heap();
        h.classes.register("test.Obj");
        h
    }

    #[test]
    fn allocation_lays_out_fields() {
        let mut h = heap_with_class();
        let o = alloc(&mut h, SpaceKind::Eden, 2, 3);
        assert_eq!(h.size_words(o), 7);
        assert_eq!(h.ref_words(o), 2);
        assert_eq!(h.class_of(o), ClassId(0));
        assert!(h.get_ref(o, 0).is_null());
        assert!(h.get_ref(o, 1).is_null());
        assert_eq!(h.get_data(o, 2), 0);
    }

    #[test]
    fn fields_read_back() {
        let mut h = heap_with_class();
        let a = alloc(&mut h, SpaceKind::Eden, 1, 1);
        let b = alloc(&mut h, SpaceKind::Old, 0, 1);
        h.set_ref(a, 0, b);
        h.set_data(a, 0, 777);
        h.set_data(b, 0, 888);
        assert_eq!(h.get_ref(a, 0), b);
        assert_eq!(h.get_data(a, 0), 777);
        assert_eq!(h.get_data(b, 0), 888);
    }

    #[test]
    fn cross_region_store_records_remset_entry() {
        let mut h = heap_with_class();
        let young = alloc(&mut h, SpaceKind::Eden, 1, 0);
        let old = alloc(&mut h, SpaceKind::Old, 1, 0);
        // Old object points at a young object: the young object's region
        // must remember the old slot.
        h.set_ref(old, 0, young);
        let rset_len = h.region(young.region()).rset.len();
        assert_eq!(rset_len, 1);
        // Same-region stores do not record: the barrier counter stays put.
        let young2 = alloc(&mut h, SpaceKind::Eden, 1, 0);
        assert_eq!(young2.region(), young.region(), "test assumes shared eden region");
        h.set_ref(young, 0, young2);
        assert_eq!(h.stats().barrier_records, 1);
    }

    #[test]
    fn allocation_spills_to_new_regions() {
        let mut h = heap_with_class();
        // Region is 128 words; each object is 2 + 30 = 32 words.
        let mut last = None;
        for _ in 0..8 {
            last = Some(alloc(&mut h, SpaceKind::Eden, 0, 30));
        }
        // 8 * 32 = 256 words -> two regions.
        assert_eq!(h.regions_of_kind(RegionKind::Eden).len(), 2);
        assert!(last.is_some());
    }

    #[test]
    fn heap_exhaustion_reports_needs_gc() {
        let mut h = heap_with_class();
        loop {
            let hash = h.next_identity_hash();
            match h.alloc_in(SpaceKind::Eden, ClassId(0), 0, 30, ObjectHeader::new(hash)) {
                Ok(_) => continue,
                Err(AllocFailure::NeedsGc) => break,
                Err(e) => panic!("unexpected failure {e:?}"),
            }
        }
        assert_eq!(h.free_regions(), 0);
    }

    #[test]
    fn humongous_objects_get_dedicated_regions() {
        let mut h = heap_with_class();
        // Region is 128 words; > 64 words is humongous.
        let o = alloc(&mut h, SpaceKind::Eden, 0, 100);
        assert_eq!(h.region(o.region()).kind, RegionKind::Humongous);
        assert_eq!(h.stats().humongous_allocations, 1);
        assert_eq!(h.get_data(o, 99), 0);
    }

    #[test]
    fn copy_object_forwards_and_preserves_fields() {
        let mut h = heap_with_class();
        let o = alloc(&mut h, SpaceKind::Eden, 1, 2);
        let p = alloc(&mut h, SpaceKind::Eden, 0, 0);
        h.set_ref(o, 0, p);
        h.set_data(o, 1, 4242);
        let header_before = h.header(o);

        let o2 = h.copy_object(o, SpaceKind::Old).unwrap();
        assert_ne!(o, o2);
        assert!(h.header(o).is_forwarded());
        assert_eq!(h.header(o).forwardee(), o2);
        assert_eq!(h.resolve(o), o2);
        assert_eq!(h.header(o2), header_before);
        assert_eq!(h.get_ref(o2, 0), p);
        assert_eq!(h.get_data(o2, 1), 4242);
        // Copying again is idempotent.
        assert_eq!(h.copy_object(o, SpaceKind::Old).unwrap(), o2);
        assert_eq!(h.stats().objects_copied, 1);
    }

    #[test]
    fn object_walk_visits_every_object_once() {
        let mut h = heap_with_class();
        let a = alloc(&mut h, SpaceKind::Eden, 0, 1);
        let b = alloc(&mut h, SpaceKind::Eden, 2, 5);
        let c = alloc(&mut h, SpaceKind::Eden, 0, 0);
        let walked: Vec<ObjectRef> = h.objects_in_region(a.region()).collect();
        assert_eq!(walked, vec![a, b, c]);
    }

    #[test]
    fn release_recycles_regions() {
        let mut h = heap_with_class();
        let o = alloc(&mut h, SpaceKind::Eden, 0, 30);
        let region = o.region();
        let free_before = h.free_regions();
        h.retire_current(SpaceKind::Eden);
        h.release_region(region);
        assert_eq!(h.free_regions(), free_before + 1);
        // Next eden allocation may reuse the same region.
        let o2 = alloc(&mut h, SpaceKind::Eden, 0, 30);
        assert_eq!(o2.region(), region);
    }

    #[test]
    fn used_and_committed_bytes_track_allocation() {
        let mut h = heap_with_class();
        assert_eq!(h.used_bytes(), 0);
        let _ = alloc(&mut h, SpaceKind::Eden, 0, 6);
        assert_eq!(h.used_bytes(), 8 * 8);
        assert_eq!(h.committed_bytes(), 1024);
    }

    #[test]
    fn identity_hashes_vary() {
        let mut h = small_heap();
        let a = h.next_identity_hash();
        let b = h.next_identity_hash();
        assert_ne!(a, b);
    }

    // --- TLABs ---

    fn tlab_alloc(heap: &mut Heap, thread: u32, refs: u16, data: u32) -> TlabAlloc {
        let hash = heap.next_identity_hash();
        heap.tlab_alloc(thread, SpaceKind::Eden, ClassId(0), refs, data, ObjectHeader::new(hash))
    }

    #[test]
    fn tlab_hits_after_one_refill() {
        let mut h = heap_with_class();
        let first = tlab_alloc(&mut h, 0, 0, 2);
        assert!(matches!(first, TlabAlloc::Refilled(_)), "first allocation carves: {first:?}");
        for _ in 0..10 {
            assert!(matches!(tlab_alloc(&mut h, 0, 0, 2), TlabAlloc::Hit(_)));
        }
        assert_eq!(h.stats().tlab_refills, 1);
    }

    /// Single-thread TLAB placement is bit-identical to the shared bump
    /// path — the core determinism contract of the fast path.
    #[test]
    fn single_thread_tlab_placement_matches_reference() {
        let roomy = || {
            let mut h = Heap::new(HeapConfig { region_bytes: 1024, max_heap_bytes: 1024 * 1024 });
            h.classes.register("test.Obj");
            h
        };
        let mut reference = roomy();
        let mut tlabbed = roomy();
        // Mixed sizes, including oversized (> tlab, > region/2 humongous)
        // objects that force Miss paths and region spills.
        let sizes: Vec<u32> =
            (0..200).map(|i: u32| [1, 7, 30, 62, 100][(i % 5) as usize]).collect();
        for &data in &sizes {
            let hr = reference.next_identity_hash();
            let a = reference
                .alloc_in(SpaceKind::Eden, ClassId(0), 1, data, ObjectHeader::new(hr))
                .unwrap();
            let ht = tlabbed.next_identity_hash();
            let b = match tlabbed.tlab_alloc(
                0,
                SpaceKind::Eden,
                ClassId(0),
                1,
                data,
                ObjectHeader::new(ht),
            ) {
                TlabAlloc::Hit(o) | TlabAlloc::Refilled(o) => o,
                TlabAlloc::Miss => tlabbed
                    .alloc_in(SpaceKind::Eden, ClassId(0), 1, data, ObjectHeader::new(ht))
                    .unwrap(),
            };
            assert_eq!(a, b, "placement diverged at data={data}");
        }
        tlabbed.retire_all_tlabs();
        // Identical region-by-region frontiers and word images.
        for (id, r) in reference.regions() {
            let rt = tlabbed.region(id);
            assert_eq!(r.kind, rt.kind, "{id:?}");
            assert_eq!(r.top(), rt.top(), "{id:?}");
            for off in 0..r.top() as u32 {
                assert_eq!(r.word(off), rt.word(off), "{id:?} word {off}");
            }
        }
        assert_eq!(reference.used_bytes(), tlabbed.used_bytes());
        assert_eq!(h_free(&reference), h_free(&tlabbed));
        assert!(tlabbed.stats().tlab_refills > 0, "TLABs actually engaged");
        assert_eq!(tlabbed.stats().tlab_fillers, 0, "one thread never needs fillers");
    }

    fn h_free(h: &Heap) -> usize {
        h.free_regions()
    }

    #[test]
    fn multi_thread_retirement_stamps_fillers_and_walk_skips_them() {
        let mut h = heap_with_class();
        // Shrink chunks below the region size so two threads can carve
        // from the same eden region, then interleave them so the second
        // carve moves the frontier past the first buffer.
        h.set_tlab_bytes(256);
        let a = match tlab_alloc(&mut h, 0, 0, 2) {
            TlabAlloc::Refilled(o) => o,
            other => panic!("expected refill, got {other:?}"),
        };
        let b = match tlab_alloc(&mut h, 1, 0, 2) {
            TlabAlloc::Refilled(o) => o,
            other => panic!("expected refill, got {other:?}"),
        };
        assert_eq!(a.region(), b.region(), "both carves from the shared eden region");
        h.retire_all_tlabs();
        assert!(h.stats().tlab_fillers >= 1, "thread 0's tail needed a filler");
        // The region stays parsable: the walk yields exactly the two
        // objects, skipping the filler between them.
        let walked: Vec<ObjectRef> = h.objects_in_region(a.region()).collect();
        assert_eq!(walked, vec![a, b]);
    }

    #[test]
    fn disabled_tlabs_always_miss() {
        let mut h = heap_with_class();
        h.set_tlab_bytes(0);
        assert_eq!(tlab_alloc(&mut h, 0, 0, 2), TlabAlloc::Miss);
        assert_eq!(h.stats().tlab_refills, 0);
    }

    #[test]
    fn released_region_invalidates_its_tlabs() {
        let mut h = heap_with_class();
        let o = match tlab_alloc(&mut h, 0, 0, 2) {
            TlabAlloc::Refilled(o) => o,
            other => panic!("expected refill, got {other:?}"),
        };
        h.retire_current(SpaceKind::Eden);
        h.release_region(o.region());
        // The next TLAB allocation must not write into the freed region
        // through a stale buffer: it re-carves.
        match tlab_alloc(&mut h, 0, 0, 2) {
            TlabAlloc::Refilled(_) => {}
            other => panic!("stale buffer survived release: {other:?}"),
        }
    }

    #[test]
    fn humongous_objects_leave_the_tlab_intact() {
        let mut h = heap_with_class();
        assert!(matches!(tlab_alloc(&mut h, 0, 0, 2), TlabAlloc::Refilled(_)));
        // 100 data words > 64 (region/2): humongous, bypasses the TLAB.
        assert_eq!(tlab_alloc(&mut h, 0, 0, 100), TlabAlloc::Miss);
        // The buffer is still live: next small allocation hits.
        assert!(matches!(tlab_alloc(&mut h, 0, 0, 2), TlabAlloc::Hit(_)));
    }
}
