//! Lock-free work claiming for parallel GC workers.
//!
//! GC workers split pause work (regions to scan, chunks of an object
//! list) by claiming from a shared cursor instead of being handed static
//! partitions — the same dynamic load balancing HotSpot's parallel
//! collectors use, which keeps a worker that drew a dense region from
//! becoming the pause's critical path. Claim *order* is racy by design;
//! callers must make their merge order-independent (sort, sum, or set
//! union) to keep parallel pauses deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::region::RegionId;

/// A shared claim cursor over a fixed list of regions.
#[derive(Debug)]
pub struct RegionClaimer {
    regions: Vec<RegionId>,
    cursor: AtomicUsize,
}

impl RegionClaimer {
    /// A claimer over `regions` (claimed in list order).
    pub fn new(regions: Vec<RegionId>) -> Self {
        RegionClaimer { regions, cursor: AtomicUsize::new(0) }
    }

    /// Claims the next unclaimed region, or `None` when exhausted.
    pub fn claim(&self) -> Option<RegionId> {
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        self.regions.get(idx).copied()
    }

    /// Total regions under the claimer.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True when the claimer covers no regions.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

/// A shared claim cursor handing out `[start, end)` chunks of an indexed
/// work list (object slices, slot lists).
#[derive(Debug)]
pub struct ChunkClaimer {
    len: usize,
    chunk: usize,
    cursor: AtomicUsize,
}

impl ChunkClaimer {
    /// A claimer over `len` items in chunks of `chunk`.
    pub fn new(len: usize, chunk: usize) -> Self {
        ChunkClaimer { len, chunk: chunk.max(1), cursor: AtomicUsize::new(0) }
    }

    /// Claims the next chunk as an index range, or `None` when exhausted.
    pub fn claim(&self) -> Option<std::ops::Range<usize>> {
        let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some(start..(start + self.chunk).min(self.len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_claimed_exactly_once() {
        let claimer = RegionClaimer::new((0..100).map(RegionId).collect());
        assert_eq!(claimer.len(), 100);
        let claimed: std::collections::HashSet<RegionId> =
            std::iter::from_fn(|| claimer.claim()).collect();
        assert_eq!(claimed.len(), 100);
        assert!(claimer.claim().is_none(), "exhausted stays exhausted");
    }

    #[test]
    fn concurrent_claims_partition_the_list() {
        let claimer = std::sync::Arc::new(RegionClaimer::new((0..1_000).map(RegionId).collect()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let claimer = std::sync::Arc::clone(&claimer);
            handles.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                while let Some(r) = claimer.claim() {
                    mine.push(r);
                }
                mine
            }));
        }
        let mut all: Vec<RegionId> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1_000, "every region claimed exactly once");
    }

    #[test]
    fn chunks_cover_the_range_without_overlap() {
        let claimer = ChunkClaimer::new(1_000, 64);
        let mut covered = vec![false; 1_000];
        while let Some(range) = claimer.claim() {
            for i in range {
                assert!(!covered[i], "chunk overlap at {i}");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn empty_and_zero_chunk_inputs_are_safe() {
        assert!(RegionClaimer::new(Vec::new()).claim().is_none());
        assert!(RegionClaimer::new(Vec::new()).is_empty());
        let c = ChunkClaimer::new(0, 0);
        assert!(c.claim().is_none());
        let c = ChunkClaimer::new(3, 0); // chunk clamps to 1
        assert_eq!(c.claim(), Some(0..1));
    }
}
