//! The 64-bit object header (paper Fig. 2).
//!
//! Bit layout, low to high:
//!
//! ```text
//! bits  0..2   lock bits (00 = unlocked; 11 = GC forwarding marker)
//! bit   2      biased-lock bit
//! bits  3..7   age (GC cycles survived, saturates at 15)
//! bit   7      unused
//! bits  8..32  identity hash (24 bits)
//! bits 32..48  thread stack state   \  together: the 32-bit
//! bits 48..64  allocation site id   /  ROLP allocation context
//! ```
//!
//! The upper 32 bits are the bits HotSpot uses for the biased-locking
//! thread pointer. ROLP reuses them for the allocation context; if the
//! object later becomes biased-locked the context is overwritten and the
//! object is simply discarded for profiling purposes (paper §3.2.2). The
//! same 2 low lock bits double as the forwarding marker during evacuation,
//! exactly like HotSpot's "marked" encoding.

use crate::object::ObjectRef;

const LOCK_MASK: u64 = 0b11;
const FORWARDED: u64 = 0b11;
const BIASED_BIT: u64 = 1 << 2;
const AGE_SHIFT: u32 = 3;
const AGE_MASK: u64 = 0xF << AGE_SHIFT;
/// Marks a TLAB-retirement filler (dead space keeping regions parsable).
/// Bit 7 is the one header bit no constructor ever sets, so a first word
/// with it set — and without the forwarding encoding in the lock bits —
/// can only be a filler.
const FILLER_BIT: u64 = 1 << 7;
const HASH_SHIFT: u32 = 8;
const HASH_MASK: u64 = 0xFF_FFFF << HASH_SHIFT;
const CONTEXT_SHIFT: u32 = 32;

/// Maximum object age representable in the header (4 bits, paper §4).
pub const MAX_AGE: u8 = 15;

/// A decoded-on-demand view over the raw 64-bit header word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectHeader(pub u64);

impl ObjectHeader {
    /// A fresh header: unlocked, unbiased, age 0, no context, given hash.
    pub fn new(identity_hash: u32) -> Self {
        ObjectHeader(((identity_hash as u64) << HASH_SHIFT) & HASH_MASK)
    }

    /// Raw header word.
    pub fn raw(self) -> u64 {
        self.0
    }

    // --- Forwarding (used by collectors during evacuation) ---

    /// True if the header holds a forwarding pointer.
    pub fn is_forwarded(self) -> bool {
        self.0 & LOCK_MASK == FORWARDED
    }

    /// Encodes a forwarding pointer to `to`.
    ///
    /// # Panics
    ///
    /// Panics if the packed reference does not fit in 62 bits (cannot
    /// happen for heaps below 2^30 regions).
    pub fn forward_to(to: ObjectRef) -> Self {
        let packed = to.raw();
        assert!(packed <= (u64::MAX >> 2), "object reference too large to forward");
        ObjectHeader((packed << 2) | FORWARDED)
    }

    /// Decodes the forwarding pointer.
    ///
    /// # Panics
    ///
    /// Panics if the header is not forwarded.
    pub fn forwardee(self) -> ObjectRef {
        assert!(self.is_forwarded(), "header is not forwarded");
        ObjectRef::from_raw(self.0 >> 2)
    }

    // --- Age ---

    /// GC cycles this object has survived (0..=15).
    pub fn age(self) -> u8 {
        ((self.0 & AGE_MASK) >> AGE_SHIFT) as u8
    }

    /// Returns a header with the age incremented, saturating at
    /// [`MAX_AGE`] (HotSpot stops aging at 15; paper §4 keys the inference
    /// period off this bound).
    pub fn with_incremented_age(self) -> Self {
        let age = self.age().saturating_add(1).min(MAX_AGE);
        ObjectHeader((self.0 & !AGE_MASK) | ((age as u64) << AGE_SHIFT))
    }

    /// Returns a header with the age set to `age`.
    ///
    /// # Panics
    ///
    /// Panics if `age > 15`.
    pub fn with_age(self, age: u8) -> Self {
        assert!(age <= MAX_AGE, "age must fit in 4 bits");
        ObjectHeader((self.0 & !AGE_MASK) | ((age as u64) << AGE_SHIFT))
    }

    // --- Identity hash ---

    /// The 24-bit identity hash.
    pub fn identity_hash(self) -> u32 {
        ((self.0 & HASH_MASK) >> HASH_SHIFT) as u32
    }

    // --- Biased locking ---

    /// True if the object is biased-locked towards some thread.
    pub fn is_biased(self) -> bool {
        self.0 & BIASED_BIT != 0
    }

    /// Bias-locks the object towards `thread_id`, overwriting whatever the
    /// upper 32 bits held (including a ROLP allocation context).
    pub fn with_bias(self, thread_id: u32) -> Self {
        let low = self.0 & 0xFFFF_FFFF;
        ObjectHeader(low | BIASED_BIT | ((thread_id as u64) << CONTEXT_SHIFT))
    }

    /// Revokes the bias; the upper 32 bits are cleared (the allocation
    /// context is *not* restored — it was lost, as in the paper).
    pub fn with_bias_revoked(self) -> Self {
        ObjectHeader(self.0 & (0xFFFF_FFFF & !BIASED_BIT))
    }

    /// The thread the object is biased towards, if biased.
    pub fn bias_owner(self) -> Option<u32> {
        if self.is_biased() {
            Some((self.0 >> CONTEXT_SHIFT) as u32)
        } else {
            None
        }
    }

    // --- ROLP allocation context (upper 32 bits) ---

    /// Installs a 32-bit allocation context (site id in the upper 16 bits,
    /// thread stack state in the lower 16).
    pub fn with_allocation_context(self, context: u32) -> Self {
        let low = self.0 & 0xFFFF_FFFF;
        ObjectHeader(low | ((context as u64) << CONTEXT_SHIFT))
    }

    /// Reads the allocation context, or `None` if the object is biased
    /// locked (in which case the bits hold a thread pointer, paper §3.2.2).
    pub fn allocation_context(self) -> Option<u32> {
        if self.is_biased() {
            None
        } else {
            Some((self.0 >> CONTEXT_SHIFT) as u32)
        }
    }

    /// Reads the upper 32 bits without the biased-lock check. Used by the
    /// ablation that measures how often stale bias bits would corrupt
    /// profiling if the check were skipped.
    pub fn allocation_context_unchecked(self) -> u32 {
        (self.0 >> CONTEXT_SHIFT) as u32
    }

    // --- TLAB retirement fillers ---

    /// A filler word covering `size_words` of dead space. Retiring a
    /// TLAB whose region frontier has moved past it cannot give the
    /// unused tail back, so the tail is stamped with one of these to
    /// keep the region parsable for cursor walks (HotSpot does the same
    /// with `int[]` fillers). The size lives in the upper 32 bits, so a
    /// one-word gap is representable — a real object never is, since
    /// every object carries a two-word header.
    pub fn filler_word(size_words: usize) -> u64 {
        debug_assert!(size_words >= 1, "filler must cover at least one word");
        FILLER_BIT | ((size_words as u64) << CONTEXT_SHIFT)
    }

    /// True if `word`, read at an object start during a cursor walk, is a
    /// filler rather than an object header. Forwarded headers can carry
    /// any bit pattern above the lock bits, so the forwarding encoding is
    /// explicitly excluded.
    pub fn is_filler_word(word: u64) -> bool {
        word & FILLER_BIT != 0 && word & LOCK_MASK != FORWARDED
    }

    /// The extent of a filler word, in words.
    ///
    /// # Panics
    ///
    /// Debug-panics if `word` is not a filler.
    pub fn filler_size_words(word: u64) -> usize {
        debug_assert!(Self::is_filler_word(word), "not a filler word");
        (word >> CONTEXT_SHIFT) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionId;

    #[test]
    fn fresh_header_is_clean() {
        let h = ObjectHeader::new(0xABCDEF);
        assert_eq!(h.age(), 0);
        assert!(!h.is_biased());
        assert!(!h.is_forwarded());
        assert_eq!(h.identity_hash(), 0xABCDEF);
        assert_eq!(h.allocation_context(), Some(0));
    }

    #[test]
    fn hash_is_truncated_to_24_bits() {
        let h = ObjectHeader::new(0xFFFF_FFFF);
        assert_eq!(h.identity_hash(), 0xFF_FFFF);
    }

    #[test]
    fn age_saturates_at_15() {
        let mut h = ObjectHeader::new(1);
        for _ in 0..40 {
            h = h.with_incremented_age();
        }
        assert_eq!(h.age(), MAX_AGE);
    }

    #[test]
    fn context_roundtrips_and_preserves_low_bits() {
        let h = ObjectHeader::new(0x123456).with_age(7).with_allocation_context(0xDEAD_BEEF);
        assert_eq!(h.allocation_context(), Some(0xDEAD_BEEF));
        assert_eq!(h.age(), 7);
        assert_eq!(h.identity_hash(), 0x123456);
    }

    #[test]
    fn biasing_destroys_the_context() {
        let h = ObjectHeader::new(1).with_allocation_context(0xCAFE_F00D);
        let b = h.with_bias(42);
        assert!(b.is_biased());
        assert_eq!(b.allocation_context(), None);
        assert_eq!(b.bias_owner(), Some(42));
        // Revoking does not bring the context back.
        let r = b.with_bias_revoked();
        assert!(!r.is_biased());
        assert_eq!(r.allocation_context(), Some(0));
    }

    #[test]
    fn forwarding_roundtrips() {
        let target = ObjectRef::new(RegionId(7), 1234);
        let f = ObjectHeader::forward_to(target);
        assert!(f.is_forwarded());
        assert_eq!(f.forwardee(), target);
    }

    #[test]
    fn normal_headers_are_not_forwarded() {
        let h = ObjectHeader::new(99).with_allocation_context(u32::MAX).with_age(15);
        assert!(!h.is_forwarded());
    }

    #[test]
    #[should_panic(expected = "not forwarded")]
    fn forwardee_panics_on_normal_header() {
        ObjectHeader::new(1).forwardee();
    }

    #[test]
    fn filler_words_roundtrip_and_are_distinguishable() {
        for size in [1usize, 2, 64, 1 << 20] {
            let w = ObjectHeader::filler_word(size);
            assert!(ObjectHeader::is_filler_word(w));
            assert_eq!(ObjectHeader::filler_size_words(w), size);
        }
        // No constructed header is ever mistaken for a filler: bit 7 is
        // outside every field a constructor writes.
        let h = ObjectHeader::new(0xFF_FFFF).with_age(15).with_allocation_context(u32::MAX);
        assert!(!ObjectHeader::is_filler_word(h.raw()));
        let b = ObjectHeader::new(1).with_bias(u32::MAX);
        assert!(!ObjectHeader::is_filler_word(b.raw()));
        // Forwarding encodings are excluded even though their payload may
        // set bit 7.
        let f = ObjectHeader::forward_to(ObjectRef::new(RegionId(0x20), 0));
        assert!(!ObjectHeader::is_filler_word(f.raw()));
    }
}
