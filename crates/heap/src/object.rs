//! Packed object references.

use core::fmt;

use crate::region::RegionId;

/// A reference to an object: region index in the high 32 bits, word offset
/// of the header within the region in the low 32 bits.
///
/// `ObjectRef::NULL` plays the role of Java's `null`; it is the value
/// `u64::MAX`, which can never denote a real location (region indices are
/// bounded by the heap size).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectRef(u64);

impl ObjectRef {
    /// The null reference.
    pub const NULL: ObjectRef = ObjectRef(u64::MAX);

    /// Creates a reference to the object whose header is at `offset` words
    /// into region `region`.
    pub fn new(region: RegionId, offset: u32) -> Self {
        ObjectRef(((region.0 as u64) << 32) | offset as u64)
    }

    /// Reconstructs a reference from its packed form.
    pub const fn from_raw(raw: u64) -> Self {
        ObjectRef(raw)
    }

    /// The packed form (stored verbatim in heap ref fields).
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// True for the null reference.
    pub const fn is_null(self) -> bool {
        self.0 == u64::MAX
    }

    /// The region holding the object.
    ///
    /// # Panics
    ///
    /// Panics on the null reference.
    pub fn region(self) -> RegionId {
        assert!(!self.is_null(), "null object reference");
        RegionId((self.0 >> 32) as u32)
    }

    /// Word offset of the object header within its region.
    ///
    /// # Panics
    ///
    /// Panics on the null reference.
    pub fn offset(self) -> u32 {
        assert!(!self.is_null(), "null object reference");
        self.0 as u32
    }
}

impl fmt::Debug for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "ObjectRef(NULL)")
        } else {
            write!(f, "ObjectRef({}:{})", (self.0 >> 32) as u32, self.0 as u32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let r = ObjectRef::new(RegionId(17), 4093);
        assert_eq!(r.region(), RegionId(17));
        assert_eq!(r.offset(), 4093);
        assert!(!r.is_null());
        assert_eq!(ObjectRef::from_raw(r.raw()), r);
    }

    #[test]
    fn null_is_distinguished() {
        assert!(ObjectRef::NULL.is_null());
        let r = ObjectRef::new(RegionId(u32::MAX - 1), u32::MAX);
        assert!(!r.is_null());
    }

    #[test]
    #[should_panic(expected = "null object reference")]
    fn region_of_null_panics() {
        ObjectRef::NULL.region();
    }
}
