//! Property-based tests for the heap substrate.

use proptest::prelude::*;
use rolp_heap::header::MAX_AGE;
use rolp_heap::{ClassId, Heap, HeapConfig, ObjectHeader, ObjectRef, RegionId, SpaceKind};

proptest! {
    /// Header fields never bleed into each other, for arbitrary values.
    #[test]
    fn header_fields_are_independent(
        hash in 0u32..(1 << 24),
        ctx in any::<u32>(),
        age in 0u8..=MAX_AGE,
    ) {
        let h = ObjectHeader::new(hash).with_allocation_context(ctx).with_age(age);
        prop_assert_eq!(h.identity_hash(), hash);
        prop_assert_eq!(h.allocation_context(), Some(ctx));
        prop_assert_eq!(h.age(), age);
        prop_assert!(!h.is_biased());
        prop_assert!(!h.is_forwarded());

        // Biasing hides the context but preserves the low bits.
        let b = h.with_bias(7);
        prop_assert_eq!(b.allocation_context(), None);
        prop_assert_eq!(b.age(), age);
        prop_assert_eq!(b.identity_hash(), hash);
    }

    /// Forwarding encodes and decodes any reference the heap can produce.
    #[test]
    fn forwarding_roundtrips(region in 0u32..(1 << 20), offset in any::<u32>()) {
        let target = ObjectRef::new(RegionId(region), offset);
        let f = ObjectHeader::forward_to(target);
        prop_assert!(f.is_forwarded());
        prop_assert_eq!(f.forwardee(), target);
    }

    /// Object refs pack and unpack losslessly.
    #[test]
    fn object_ref_roundtrips(region in 0u32..u32::MAX - 1, offset in any::<u32>()) {
        let r = ObjectRef::new(RegionId(region), offset);
        prop_assert!(!r.is_null());
        prop_assert_eq!(r.region(), RegionId(region));
        prop_assert_eq!(r.offset(), offset);
        prop_assert_eq!(ObjectRef::from_raw(r.raw()), r);
    }

    /// Whatever is written to an object's fields reads back, across many
    /// objects interleaved in the same regions.
    #[test]
    fn field_writes_read_back(
        objects in prop::collection::vec((0u16..4, 0u32..16, any::<u64>()), 1..60),
    ) {
        let mut heap = Heap::new(HeapConfig { region_bytes: 4096, max_heap_bytes: 4 << 20 });
        let class = heap.classes.register("prop.Obj");
        let mut placed = Vec::new();
        for &(refs, data, seed) in &objects {
            let hash = heap.next_identity_hash();
            let obj = heap
                .alloc_in(SpaceKind::Eden, class, refs, data, ObjectHeader::new(hash))
                .expect("fits");
            for j in 0..data {
                heap.set_data(obj, j, seed.wrapping_add(j as u64));
            }
            placed.push((obj, refs, data, seed));
        }
        // Link each object to the previous one where possible.
        for w in placed.windows(2) {
            let (prev, _, _, _) = w[0];
            let (cur, refs, _, _) = w[1];
            if refs > 0 {
                heap.set_ref(cur, 0, prev);
            }
        }
        for &(obj, refs, data, seed) in &placed {
            prop_assert_eq!(heap.ref_words(obj), refs);
            for j in 0..data {
                prop_assert_eq!(heap.get_data(obj, j), seed.wrapping_add(j as u64));
            }
        }
        // The object walk sees exactly the objects placed per region.
        let mut walked = 0;
        for (id, region) in heap.regions() {
            if region.used_bytes() > 0 {
                walked += heap.objects_in_region(id).count();
            }
        }
        prop_assert_eq!(walked, placed.len());
    }

    /// Copying preserves the full object image and forwarding resolves.
    #[test]
    fn copy_preserves_image(
        refs in 0u16..4,
        data in 0u32..16,
        seed in any::<u64>(),
        ctx in any::<u32>(),
    ) {
        let mut heap = Heap::new(HeapConfig { region_bytes: 4096, max_heap_bytes: 1 << 20 });
        let class = heap.classes.register("prop.Obj");
        let header = ObjectHeader::new(1).with_allocation_context(ctx);
        let obj = heap.alloc_in(SpaceKind::Eden, class, refs, data, header).expect("fits");
        let peer = heap
            .alloc_in(SpaceKind::Old, class, 0, 1, ObjectHeader::new(2))
            .expect("fits");
        if refs > 0 {
            heap.set_ref(obj, 0, peer);
        }
        for j in 0..data {
            heap.set_data(obj, j, seed ^ j as u64);
        }

        let copy = heap.copy_object(obj, SpaceKind::Old).expect("space available");
        prop_assert_eq!(heap.resolve(obj), copy);
        prop_assert_eq!(heap.header(copy).allocation_context(), Some(ctx));
        prop_assert_eq!(heap.ref_words(copy), refs);
        if refs > 0 {
            prop_assert_eq!(heap.get_ref(copy, 0), peer);
        }
        for j in 0..data {
            prop_assert_eq!(heap.get_data(copy, j), seed ^ j as u64);
        }
    }
}

#[test]
fn class_table_rejects_nothing_reasonable() {
    let mut heap = Heap::new(HeapConfig { region_bytes: 4096, max_heap_bytes: 1 << 20 });
    for i in 0..100 {
        let id = heap.classes.register(format!("prop.C{i}"));
        assert_eq!(id, ClassId(i as u16));
    }
}
