//! Property-based tests for the metrics substrate.

use proptest::prelude::*;
use rolp_metrics::{quantile_sorted, Histogram};

proptest! {
    /// Histogram percentiles track exact (sorted) percentiles within the
    /// structure's bounded relative error.
    #[test]
    fn percentiles_track_exact_values(
        mut values in prop::collection::vec(1u64..100_000_000, 1..500),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for p in [50.0, 90.0, 99.0] {
            let exact = quantile_sorted(&values, p / 100.0) as f64;
            let approx = h.percentile(p) as f64;
            // Log-bucketed with 5 precision bits: < 1/32 relative error on
            // the bucket representative (which is a lower bound).
            prop_assert!(approx <= exact + 1.0, "p{p}: approx {approx} > exact {exact}");
            prop_assert!(
                approx >= exact * (1.0 - 1.0 / 32.0) - 1.0,
                "p{p}: approx {approx} too far below exact {exact}"
            );
        }
        prop_assert_eq!(h.max(), *values.last().expect("non-empty"));
        prop_assert_eq!(h.min(), values[0]);
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    /// Interval counts always partition the full population, for any
    /// bucket bounds.
    #[test]
    fn interval_counts_partition(
        values in prop::collection::vec(0u64..1_000_000, 0..300),
        mut bounds in prop::collection::vec(0u64..1_000_000, 1..8),
    ) {
        bounds.sort_unstable();
        bounds.dedup();
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let counts = h.interval_counts(&bounds);
        prop_assert_eq!(counts.iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(counts.len(), bounds.len());
    }

    /// Merging histograms equals recording the concatenation.
    #[test]
    fn merge_is_concatenation(
        a in prop::collection::vec(0u64..1_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hc = Histogram::new();
        for &v in &a {
            ha.record(v);
            hc.record(v);
        }
        for &v in &b {
            hb.record(v);
            hc.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hc.count());
        prop_assert_eq!(ha.min(), hc.min());
        prop_assert_eq!(ha.max(), hc.max());
        for p in [50.0, 95.0, 100.0] {
            prop_assert_eq!(ha.percentile(p), hc.percentile(p));
        }
    }
}
