//! Small-sample summary statistics.
//!
//! The paper runs each experiment five times "enough to be able to detect
//! outliers"; bench harnesses do the same and summarize with these helpers.

/// Summary statistics of a small sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator), 0.0 for n < 2.
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Sample size.
    pub n: usize,
}

impl Summary {
    /// Computes summary statistics of `values`.
    ///
    /// Returns an all-zero summary for an empty slice.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary { mean: 0.0, stddev: 0.0, min: 0.0, max: 0.0, n: 0 };
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Summary { mean, stddev: var.sqrt(), min, max, n }
    }

    /// Indices of observations more than `k` standard deviations from the
    /// mean (the paper's outlier check across its five runs).
    pub fn outliers(values: &[f64], k: f64) -> Vec<usize> {
        let s = Summary::of(values);
        if s.stddev == 0.0 {
            return Vec::new();
        }
        values
            .iter()
            .enumerate()
            .filter(|(_, &v)| ((v - s.mean) / s.stddev).abs() > k)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Nearest-rank selection: the 1-based rank of the observation reported
/// for quantile `q` in a sample of `n` observations.
///
/// This is the single definition of "which observation is the p99" shared
/// by [`crate::Histogram::value_at_quantile`], the sorted-vector quantile
/// below, and every test reference implementation: `ceil(q * n)`, clamped
/// to `[1, n]`. Returns 0 for an empty sample.
pub fn rank_of(q: f64, n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    ((q * n as f64).ceil() as u64).clamp(1, n)
}

/// Nearest-rank quantile of an ascending-sorted sample.
///
/// Returns the exact observation at [`rank_of`]`(q, len)`, or 0 for an
/// empty slice. The slice must already be sorted; debug builds assert it.
pub fn quantile_sorted(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    if sorted.is_empty() {
        return 0;
    }
    sorted[rank_of(q, sorted.len() as u64) as usize - 1]
}

/// Geometric mean of strictly positive values, used for the DaCapo
/// normalized-time roll-up. Returns 0.0 for an empty slice.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.138_089_935).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn single_observation_has_zero_stddev() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.mean, 3.5);
    }

    #[test]
    fn outlier_detection_flags_extreme_run() {
        let vals = [10.0, 10.1, 9.9, 10.05, 30.0];
        let out = Summary::outliers(&vals, 1.5);
        assert_eq!(out, vec![4]);
    }

    #[test]
    fn geometric_mean_of_reciprocals_is_one() {
        let g = geometric_mean(&[2.0, 0.5, 4.0, 0.25]);
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_of_is_nearest_rank() {
        assert_eq!(rank_of(0.0, 10), 1, "q=0 reports the minimum");
        assert_eq!(rank_of(0.5, 10), 5);
        assert_eq!(rank_of(0.99, 10), 10);
        assert_eq!(rank_of(0.99, 100), 99);
        assert_eq!(rank_of(1.0, 10), 10, "q=1 reports the maximum");
        assert_eq!(rank_of(0.5, 0), 0, "empty sample has no rank");
        assert_eq!(rank_of(0.5, 1), 1);
    }

    #[test]
    fn quantile_sorted_selects_exact_observations() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_sorted(&xs, 0.50), 50);
        assert_eq!(quantile_sorted(&xs, 0.90), 90);
        assert_eq!(quantile_sorted(&xs, 0.99), 99);
        assert_eq!(quantile_sorted(&xs, 1.0), 100);
        assert_eq!(quantile_sorted(&[], 0.5), 0);
        assert_eq!(quantile_sorted(&[7], 0.99), 7);
    }

    #[test]
    fn quantile_sorted_agrees_with_histogram_rank_selection() {
        // Both paths go through `rank_of`; for exactly-representable small
        // values the histogram must report the same observation.
        let xs: Vec<u64> = (0..32).collect();
        let mut h = crate::Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        for q in [0.01, 0.25, 0.5, 0.9, 0.99] {
            assert_eq!(h.value_at_quantile(q), quantile_sorted(&xs, q), "q={q}");
        }
    }
}
