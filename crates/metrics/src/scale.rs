//! Global scale factor for scaled-down experiments.
//!
//! The paper runs on a 16 GB Xeon with 6 GB heaps for 30 minutes; the
//! reproduction scales heap sizes, dataset sizes, and run lengths by a
//! common factor so every experiment finishes in seconds of wall time while
//! preserving heap-to-working-set ratios. The default bench scale is 1/16;
//! the `ROLP_BENCH_SCALE` environment variable overrides the divisor.

/// A `1/divisor` scale applied to paper-sized parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimScale {
    divisor: u64,
}

impl Default for SimScale {
    fn default() -> Self {
        SimScale::new(16)
    }
}

impl SimScale {
    /// Creates a `1/divisor` scale.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn new(divisor: u64) -> Self {
        assert!(divisor > 0, "scale divisor must be positive");
        SimScale { divisor }
    }

    /// Full paper scale (divisor 1).
    pub fn full() -> Self {
        SimScale::new(1)
    }

    /// Reads the scale from `ROLP_BENCH_SCALE`, falling back to `default`.
    pub fn from_env(default: u64) -> Self {
        match std::env::var("ROLP_BENCH_SCALE") {
            Ok(v) => match v.trim().parse::<u64>() {
                Ok(d) if d > 0 => SimScale::new(d),
                _ => SimScale::new(default),
            },
            Err(_) => SimScale::new(default),
        }
    }

    /// The scale divisor.
    pub fn divisor(&self) -> u64 {
        self.divisor
    }

    /// Scales a byte count down, keeping at least one 4 KiB page.
    pub fn bytes(&self, paper_bytes: u64) -> u64 {
        (paper_bytes / self.divisor).max(4096)
    }

    /// Scales an item count down, keeping at least one item.
    pub fn count(&self, paper_count: u64) -> u64 {
        (paper_count / self.divisor).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_divide() {
        let s = SimScale::new(16);
        assert_eq!(s.bytes(16 << 30), 1 << 30);
        assert_eq!(s.count(1600), 100);
    }

    #[test]
    fn scaling_clamps_to_minimums() {
        let s = SimScale::new(1_000_000);
        assert_eq!(s.bytes(8192), 4096);
        assert_eq!(s.count(3), 1);
    }

    #[test]
    fn full_scale_is_identity() {
        let s = SimScale::full();
        assert_eq!(s.bytes(123_456_789), 123_456_789);
        assert_eq!(s.count(42), 42);
    }
}
