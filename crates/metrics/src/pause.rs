//! Stop-the-world pause recording.
//!
//! Collectors report every safepoint pause here. The recorder keeps both the
//! full timeline (needed for the Fig. 10 warmup plot) and a [`Histogram`]
//! (needed for the Fig. 8 percentile and Fig. 9 interval views).

use crate::histogram::Histogram;
use crate::simtime::SimTime;

/// The collector phase a pause belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PauseKind {
    /// Young-generation evacuation pause.
    Young,
    /// Mixed pause (young + some old/dynamic regions), G1/NG2C style.
    Mixed,
    /// Full-heap stop-the-world compaction (CMS failure mode).
    Full,
    /// Short bookkeeping pause of a concurrent collector (initial mark,
    /// remark, relocation handshake, ...).
    ConcurrentHandshake,
}

impl PauseKind {
    /// Short label used in bench output.
    pub fn label(self) -> &'static str {
        match self {
            PauseKind::Young => "young",
            PauseKind::Mixed => "mixed",
            PauseKind::Full => "full",
            PauseKind::ConcurrentHandshake => "handshake",
        }
    }
}

/// One recorded stop-the-world pause.
#[derive(Debug, Clone, Copy)]
pub struct PauseEvent {
    /// Simulated time at which the pause began.
    pub at: SimTime,
    /// Pause duration.
    pub duration: SimTime,
    /// Collector phase.
    pub kind: PauseKind,
}

/// Records the pauses of one run.
#[derive(Debug, Clone, Default)]
pub struct PauseRecorder {
    events: Vec<PauseEvent>,
    histogram: Histogram,
    total: SimTime,
}

impl PauseRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a pause of `duration` starting at `at`.
    pub fn record(&mut self, at: SimTime, duration: SimTime, kind: PauseKind) {
        self.events.push(PauseEvent { at, duration, kind });
        self.histogram.record(duration.as_nanos());
        self.total += duration;
    }

    /// All pauses in the order they occurred.
    pub fn events(&self) -> &[PauseEvent] {
        &self.events
    }

    /// Number of recorded pauses.
    pub fn count(&self) -> usize {
        self.events.len()
    }

    /// Sum of all pause durations.
    pub fn total(&self) -> SimTime {
        self.total
    }

    /// The pause-duration histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// Pause duration at percentile `p` (0..=100), in milliseconds.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        self.histogram.percentile(p) as f64 / 1e6
    }

    /// Drops events recorded before `cutoff` and rebuilds the histogram.
    ///
    /// The paper discards the first five minutes of every run to exclude
    /// JVM loading and JIT warmup; harnesses use this to do the same.
    pub fn discard_before(&mut self, cutoff: SimTime) {
        self.events.retain(|e| e.at >= cutoff);
        let mut h = Histogram::new();
        let mut total = SimTime::ZERO;
        for e in &self.events {
            h.record(e.duration.as_nanos());
            total += e.duration;
        }
        self.histogram = h;
        self.total = total;
    }

    /// Events within `[from, to)`, for warmup timelines.
    pub fn events_between(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &PauseEvent> {
        self.events.iter().filter(move |e| e.at >= from && e.at < to)
    }

    /// Mean pause duration in milliseconds, or 0.0 when no pause occurred.
    pub fn mean_ms(&self) -> f64 {
        if self.events.is_empty() {
            0.0
        } else {
            self.total.as_millis_f64() / self.events.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn records_and_totals() {
        let mut r = PauseRecorder::new();
        r.record(ms(1), ms(10), PauseKind::Young);
        r.record(ms(100), ms(30), PauseKind::Mixed);
        assert_eq!(r.count(), 2);
        assert_eq!(r.total(), ms(40));
        assert!(r.mean_ms() > 19.9 && r.mean_ms() < 20.1);
    }

    #[test]
    fn discard_before_removes_warmup() {
        let mut r = PauseRecorder::new();
        r.record(ms(1), ms(100), PauseKind::Full);
        r.record(SimTime::from_secs(400), ms(5), PauseKind::Young);
        r.discard_before(SimTime::from_secs(300));
        assert_eq!(r.count(), 1);
        assert_eq!(r.total(), ms(5));
        assert!(r.percentile_ms(100.0) < 6.0);
    }

    #[test]
    fn percentiles_reflect_tail() {
        let mut r = PauseRecorder::new();
        for i in 0..99 {
            r.record(ms(i), ms(5), PauseKind::Young);
        }
        r.record(ms(1000), ms(500), PauseKind::Full);
        assert!(r.percentile_ms(50.0) < 6.0);
        assert!(r.percentile_ms(100.0) > 400.0);
    }

    #[test]
    fn timeline_preserves_recording_order() {
        let mut r = PauseRecorder::new();
        let kinds =
            [PauseKind::Young, PauseKind::ConcurrentHandshake, PauseKind::Mixed, PauseKind::Full];
        for (i, &kind) in kinds.iter().enumerate() {
            r.record(ms(10 * (i as u64 + 1)), ms(1 + i as u64), kind);
        }
        let at: Vec<u64> = r.events().iter().map(|e| e.at.as_millis()).collect();
        assert_eq!(at, vec![10, 20, 30, 40], "events stay in arrival order");
        assert!(r.events().windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(r.events()[1].kind, PauseKind::ConcurrentHandshake);

        // Windowed views and warmup discard keep the same ordering.
        let windowed: Vec<u64> =
            r.events_between(ms(15), ms(45)).map(|e| e.at.as_millis()).collect();
        assert_eq!(windowed, vec![20, 30, 40]);
        r.discard_before(ms(25));
        let kept: Vec<u64> = r.events().iter().map(|e| e.at.as_millis()).collect();
        assert_eq!(kept, vec![30, 40]);
        assert_eq!(r.total(), ms(3 + 4));
    }

    #[test]
    fn events_between_filters_window() {
        let mut r = PauseRecorder::new();
        r.record(ms(10), ms(1), PauseKind::Young);
        r.record(ms(20), ms(1), PauseKind::Young);
        r.record(ms(30), ms(1), PauseKind::Young);
        let n = r.events_between(ms(15), ms(30)).count();
        assert_eq!(n, 1);
    }
}
