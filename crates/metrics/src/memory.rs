//! Heap memory usage tracking.
//!
//! Tracks committed and used bytes over a run and remembers the high-water
//! marks; the Fig. 10 (right) harness reports max memory usage normalized
//! to G1. "Committed" counts regions handed to the heap (what an OS would
//! see as RSS); "used" counts bytes actually occupied by objects.

/// Tracks heap memory usage watermarks.
#[derive(Debug, Clone, Default)]
pub struct MemoryTracker {
    committed: u64,
    used: u64,
    max_committed: u64,
    max_used: u64,
    /// Fixed side-table overhead (e.g. the OLD table), added to both views.
    side_tables: u64,
}

impl MemoryTracker {
    /// Creates a tracker with zero usage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current committed bytes.
    pub fn set_committed(&mut self, bytes: u64) {
        self.committed = bytes;
        self.max_committed = self.max_committed.max(bytes + self.side_tables);
    }

    /// Sets the current used bytes.
    pub fn set_used(&mut self, bytes: u64) {
        self.used = bytes;
        self.max_used = self.max_used.max(bytes + self.side_tables);
    }

    /// Sets the current side-table overhead (profiler tables etc.).
    pub fn set_side_tables(&mut self, bytes: u64) {
        self.side_tables = bytes;
        self.max_committed = self.max_committed.max(self.committed + bytes);
        self.max_used = self.max_used.max(self.used + bytes);
    }

    /// Current committed bytes (without side tables).
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Current used bytes (without side tables).
    pub fn used(&self) -> u64 {
        self.used
    }

    /// High-water mark of committed bytes including side tables.
    pub fn max_committed(&self) -> u64 {
        self.max_committed
    }

    /// High-water mark of used bytes including side tables.
    pub fn max_used(&self) -> u64 {
        self.max_used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermarks_only_rise() {
        let mut m = MemoryTracker::new();
        m.set_used(100);
        m.set_used(50);
        assert_eq!(m.used(), 50);
        assert_eq!(m.max_used(), 100);
    }

    #[test]
    fn side_tables_count_toward_watermarks() {
        let mut m = MemoryTracker::new();
        m.set_committed(1000);
        m.set_side_tables(24);
        assert_eq!(m.max_committed(), 1024);
        // Committed updates keep including the side tables.
        m.set_committed(1100);
        assert_eq!(m.max_committed(), 1124);
    }
}
