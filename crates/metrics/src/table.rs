//! Plain-text table rendering for bench output.
//!
//! Every table/figure harness prints its rows through this module so the
//! regenerated results line up visually with the paper's tables.

use std::fmt::Write as _;

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len().max(r.len()), String::new());
        self.rows.push(r);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:<w$}  ");
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().map(|w| w + 2).sum::<usize>().saturating_sub(2);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a byte count with binary units.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes}B")
    } else {
        format!("{v:.1}{}", UNITS[u])
    }
}

/// Formats a ratio as a percentage with the given precision.
pub fn fmt_pct(ratio: f64, decimals: usize) -> String {
    format!("{:.*}%", decimals, ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["a-much-longer-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("short"));
        // Value column is aligned across rows.
        let col = lines[3].find("12345").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn byte_formatting_uses_binary_units() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(4096), "4.0KiB");
        assert_eq!(fmt_bytes(16 << 20), "16.0MiB");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(0.0567, 1), "5.7%");
        assert_eq!(fmt_pct(1.0, 0), "100%");
    }
}
