//! Deterministic simulated time.
//!
//! The reproduction never consults the wall clock while a workload runs:
//! every mutator operation and every unit of collector work advances a
//! [`SimClock`] by a model-derived amount. This makes runs bit-reproducible
//! for a given seed and lets the bench harnesses attribute every nanosecond
//! to a mechanism (copying, barriers, profiling instructions, ...).

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the run.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time point from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates a time point from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates a time point from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Raw nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the start of the run.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since the start of the run.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional milliseconds since the start of the run.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds since the start of the run.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference between two time points.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// The simulated clock a run advances as it charges costs.
///
/// The clock distinguishes *mutator* time from *pause* time so throughput
/// accounting (paper Fig. 10, middle) can subtract stop-the-world intervals.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: SimTime,
    paused: SimTime,
    idle: SimTime,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total simulated time spent inside stop-the-world pauses.
    pub fn total_paused(&self) -> SimTime {
        self.paused
    }

    /// Total simulated time the mutator was running.
    pub fn mutator_time(&self) -> SimTime {
        self.now.saturating_sub(self.paused)
    }

    /// Advances the clock by `nanos` of mutator work.
    pub fn advance(&mut self, nanos: u64) {
        self.now += SimTime::from_nanos(nanos);
    }

    /// Advances the clock by `nanos` of idle time (request pacing, I/O
    /// waits) — time the machine was not busy.
    pub fn advance_idle(&mut self, nanos: u64) {
        self.now += SimTime::from_nanos(nanos);
        self.idle += SimTime::from_nanos(nanos);
    }

    /// Total idle time.
    pub fn total_idle(&self) -> SimTime {
        self.idle
    }

    /// Busy time: everything that was not idle (mutator work + pauses +
    /// concurrent GC work).
    pub fn busy_time(&self) -> SimTime {
        self.now.saturating_sub(self.idle)
    }

    /// Advances the clock by a stop-the-world pause of `duration`.
    pub fn advance_paused(&mut self, duration: SimTime) {
        self.now += duration;
        self.paused += duration;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_nanos(1_500_000).as_millis(), 1);
    }

    #[test]
    fn display_uses_adaptive_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_nanos(1_200).to_string(), "1.200us");
        assert_eq!(SimTime::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn clock_splits_mutator_and_pause_time() {
        let mut clock = SimClock::new();
        clock.advance(1_000);
        clock.advance_paused(SimTime::from_nanos(500));
        clock.advance(250);
        assert_eq!(clock.now().as_nanos(), 1_750);
        assert_eq!(clock.total_paused().as_nanos(), 500);
        assert_eq!(clock.mutator_time().as_nanos(), 1_250);
    }

    #[test]
    fn idle_time_is_excluded_from_busy() {
        let mut clock = SimClock::new();
        clock.advance(1_000);
        clock.advance_idle(4_000);
        clock.advance_paused(SimTime::from_nanos(500));
        assert_eq!(clock.now().as_nanos(), 5_500);
        assert_eq!(clock.total_idle().as_nanos(), 4_000);
        assert_eq!(clock.busy_time().as_nanos(), 1_500);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a).as_nanos(), 4);
    }
}
