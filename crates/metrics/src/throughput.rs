//! Application throughput accounting.
//!
//! Workloads report completed operations (requests served, documents
//! indexed, graph intervals processed); the harness divides by simulated
//! time to obtain ops/s, and by mutator time to separate GC-induced slowdown
//! from profiling-instruction slowdown (paper Fig. 10, middle).

use crate::simtime::SimTime;

/// Counts completed application operations over simulated time.
#[derive(Debug, Clone, Default)]
pub struct Throughput {
    ops: u64,
    /// (window end, ops completed in window) samples for timelines.
    samples: Vec<(SimTime, u64)>,
    window_ops: u64,
}

impl Throughput {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` completed operations.
    pub fn record(&mut self, n: u64) {
        self.ops += n;
        self.window_ops += n;
    }

    /// Closes the current sampling window at time `now`.
    pub fn sample_window(&mut self, now: SimTime) {
        self.samples.push((now, self.window_ops));
        self.window_ops = 0;
    }

    /// Total operations completed.
    pub fn total_ops(&self) -> u64 {
        self.ops
    }

    /// Mean throughput over the whole run, in operations per simulated
    /// second. Returns 0.0 if no time elapsed.
    pub fn ops_per_sec(&self, elapsed: SimTime) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }

    /// The recorded `(window end, ops)` samples.
    pub fn samples(&self) -> &[(SimTime, u64)] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_per_sec_divides_by_elapsed() {
        let mut t = Throughput::new();
        t.record(500);
        t.record(500);
        let rate = t.ops_per_sec(SimTime::from_secs(2));
        assert!((rate - 500.0).abs() < 1e-9);
    }

    #[test]
    fn zero_elapsed_yields_zero_rate() {
        let mut t = Throughput::new();
        t.record(10);
        assert_eq!(t.ops_per_sec(SimTime::ZERO), 0.0);
    }

    #[test]
    fn windows_reset_between_samples() {
        let mut t = Throughput::new();
        t.record(3);
        t.sample_window(SimTime::from_secs(1));
        t.record(7);
        t.sample_window(SimTime::from_secs(2));
        assert_eq!(t.samples(), &[(SimTime::from_secs(1), 3), (SimTime::from_secs(2), 7)]);
        assert_eq!(t.total_ops(), 10);
    }
}
