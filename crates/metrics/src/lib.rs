//! Measurement substrate for the ROLP reproduction.
//!
//! Everything in the reproduction runs against a *simulated* clock: mutator
//! operations, profiling instructions, and garbage-collection work all charge
//! deterministic costs expressed in simulated nanoseconds. This crate owns
//! that clock plus the recording machinery the evaluation needs:
//!
//! - [`SimTime`] / [`SimClock`] — the deterministic time base.
//! - [`Histogram`] — a log-bucketed (HDR-style) histogram with percentile
//!   queries, used for pause-time distributions (paper Figs. 8 and 9).
//! - [`PauseRecorder`] — a timeline of stop-the-world pauses.
//! - [`Throughput`] — operation counting and windowed rates (Fig. 10).
//! - [`MemoryTracker`] — committed/used watermarks (Fig. 10, right).
//! - [`stats`] — small-sample summary statistics for repeated runs.
//! - [`table`] — plain-text table rendering shared by the bench harnesses.

pub mod histogram;
pub mod memory;
pub mod pause;
pub mod scale;
pub mod simtime;
pub mod stats;
pub mod table;
pub mod throughput;

pub use histogram::Histogram;
pub use memory::MemoryTracker;
pub use pause::{PauseEvent, PauseKind, PauseRecorder};
pub use scale::SimScale;
pub use simtime::{SimClock, SimTime};
pub use stats::{quantile_sorted, rank_of, Summary};
pub use throughput::Throughput;
