//! Log-bucketed histogram with percentile queries.
//!
//! The paper reports pause times as percentiles (Fig. 8) and as counts per
//! duration interval (Fig. 9). Both views are served by one HDR-style
//! histogram: values are bucketed with a fixed number of sub-buckets per
//! power of two, giving a bounded relative error (< 1/32 with the default
//! 5 precision bits) at O(1) record cost and small constant memory.

/// Number of low-order bits kept exactly within each power-of-two bucket.
const PRECISION_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << PRECISION_BITS;

/// A log-bucketed histogram of `u64` values (typically nanoseconds).
#[derive(Debug, Clone)]
pub struct Histogram {
    /// counts[b * SUB_BUCKETS + s] holds values in bucket (b, s).
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Total number of buckets. Lock-free metric cells mirror this layout
    /// with atomic counters and convert back losslessly via
    /// [`Histogram::from_bucket_counts`].
    pub const SLOTS: usize = 64 * SUB_BUCKETS;

    /// Creates an empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        // 64 power-of-two buckets cover all u64 values.
        Histogram { counts: vec![0; Self::SLOTS], total: 0, min: u64::MAX, max: 0, sum: 0 }
    }

    /// The bucket index `value` maps to (always `< Histogram::SLOTS`).
    pub fn index_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let bucket = 63 - value.leading_zeros();
        let shift = bucket - PRECISION_BITS;
        let sub = ((value >> shift) as usize) & (SUB_BUCKETS - 1);
        ((bucket - PRECISION_BITS + 1) as usize) * SUB_BUCKETS + sub
    }

    /// Lowest value that maps to the bucket at `index` (the reported
    /// representative for percentile queries).
    pub fn value_of(index: usize) -> u64 {
        let bucket = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if bucket == 0 {
            sub
        } else {
            let shift = (bucket - 1) as u32;
            (SUB_BUCKETS as u64 + sub) << shift
        }
    }

    /// Reconstructs a histogram from externally accumulated per-bucket
    /// counts (the safepoint-aggregation path for per-thread atomic cells).
    ///
    /// `counts[i]` must hold the observations recorded for the bucket at
    /// index `i` per [`Histogram::index_of`]; `min`/`max`/`sum` are the
    /// exact extremes and sum of the recorded values. The result is
    /// bit-identical to a histogram fed the same samples directly.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != Histogram::SLOTS`.
    pub fn from_bucket_counts(counts: &[u64], min: u64, max: u64, sum: u128) -> Self {
        assert_eq!(counts.len(), Self::SLOTS, "bucket count layout mismatch");
        let total: u64 = counts.iter().sum();
        Histogram {
            counts: counts.to_vec(),
            total,
            min: if total == 0 { u64::MAX } else { min },
            max: if total == 0 { 0 } else { max },
            sum: if total == 0 { 0 } else { sum },
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::index_of(value);
        self.counts[idx] += n;
        self.total += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += *src;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`.
    ///
    /// Returns the representative (lower bound) of the bucket containing the
    /// `ceil(q * count)`-th observation; the exact max is returned for
    /// `q = 1.0`. Returns 0 for an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = crate::stats::rank_of(q, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::value_of(idx).max(self.min);
            }
        }
        self.max
    }

    /// Shorthand for `value_at_quantile(p / 100.0)`.
    pub fn percentile(&self, p: f64) -> u64 {
        self.value_at_quantile(p / 100.0)
    }

    /// Counts observations falling into each of the given right-open
    /// intervals `[bounds[i], bounds[i+1])`, plus a final overflow interval
    /// `[bounds.last(), +inf)`.
    ///
    /// This is the Fig. 9 "number of pauses per duration interval" view.
    /// Bucket boundaries are resolved at bucket granularity (each histogram
    /// bucket is assigned to the interval containing its representative).
    pub fn interval_counts(&self, bounds: &[u64]) -> Vec<u64> {
        assert!(!bounds.is_empty(), "need at least one interval bound");
        let mut out = vec![0u64; bounds.len()];
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let v = Self::value_of(idx);
            // Find the last bound <= v; values below bounds[0] count into
            // the first interval.
            let slot = match bounds.binary_search(&v) {
                Ok(i) => i,
                Err(0) => 0,
                Err(i) => i - 1,
            };
            out[slot] += c;
        }
        out
    }

    /// Iterates `(representative_value, count)` over non-empty buckets.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (Self::value_of(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_BUCKETS as u64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS as u64 - 1);
        // Each small value sits in its own bucket; the median of 0..32 is
        // the 16th smallest observation, which is 15.
        assert_eq!(h.value_at_quantile(0.5), (SUB_BUCKETS / 2 - 1) as u64);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = Histogram::new();
        let v = 1_234_567_890u64;
        h.record(v);
        let got = h.value_at_quantile(0.5);
        let err = (v as f64 - got as f64).abs() / v as f64;
        assert!(err < 1.0 / SUB_BUCKETS as f64, "error {err} too large");
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 37);
        }
        let mut prev = 0;
        for p in [10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let v = h.percentile(p);
            assert!(v >= prev, "p{p} = {v} < previous {prev}");
            prev = v;
        }
        assert_eq!(h.percentile(100.0), 370_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.value_at_quantile(0.99), 0);
    }

    #[test]
    fn empty_histogram_percentiles_are_zero_at_every_point() {
        let h = Histogram::new();
        for p in [0.0, 50.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), 0);
        }
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.value_at_quantile(1.0), 0);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let mut h = Histogram::new();
        h.record(123_456_789);
        for p in [0.0, 1.0, 50.0, 99.0, 99.9] {
            // The representative is clamped up to the recorded min, so a
            // lone observation is reported exactly at every percentile.
            assert_eq!(h.percentile(p), 123_456_789, "p{p}");
        }
        assert_eq!(h.percentile(100.0), 123_456_789);
        assert_eq!(h.min(), h.max());
    }

    #[test]
    fn saturating_bucket_holds_u64_max() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(100.0), u64::MAX);
        // Both extreme values land in the last power-of-two bucket; the
        // representative keeps the bounded relative error.
        let p99 = h.percentile(99.0) as f64;
        assert!(p99 >= u64::MAX as f64 * (1.0 - 1.0 / SUB_BUCKETS as f64));
        // Repeated saturating counts do not overflow the bucket tally.
        h.record_n(u64::MAX, 1 << 40);
        assert_eq!(h.count(), 3 + (1 << 40));
        assert_eq!(h.percentile(50.0), h.percentile(90.0));
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn interval_counts_partition_all_observations() {
        let mut h = Histogram::new();
        for v in [1u64, 5, 40, 200, 3_000, 3_000, 90_000] {
            h.record(v);
        }
        let counts = h.interval_counts(&[0, 100, 10_000]);
        assert_eq!(counts.iter().sum::<u64>(), h.count());
        assert_eq!(counts[0], 3); // 1, 5, 40
        assert_eq!(counts[1], 3); // 200, 3000, 3000
        assert_eq!(counts[2], 1); // 90000
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..7 {
            a.record(12345);
        }
        b.record_n(12345, 7);
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.percentile(99.0), b.percentile(99.0));
    }
}
