//! Open-loop arrival schedules.
//!
//! An open-loop load generator decides *when* each request arrives from a
//! rate schedule alone — never from the server's completion times — so a
//! stalled server accumulates a backlog instead of silently throttling
//! the offered load. Each arrival carries its **intended start time**;
//! the serving loop timestamps the **actual start** separately, and the
//! latency recorder charges every request from its intended start
//! (coordinated-omission correction, as in wrk2/HdrHistogram practice).
//!
//! A schedule is a sequence of [`PhaseSpec`]s: each phase offers a fixed
//! arrival rate and a tenant-weight mix for a fixed duration. Changing
//! rate or weights between phases is the diurnal-ramp / hot-tenant-
//! migration mechanism the re-convergence acceptance criterion drives.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rolp_metrics::SimTime;

/// How inter-arrival gaps are drawn within a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Deterministic pacing: every gap is exactly the mean (1/rate).
    Paced,
    /// Poisson arrivals: exponentially distributed gaps with mean 1/rate,
    /// drawn from a seeded deterministic generator.
    Poisson,
}

/// One traffic phase: an offered rate and a tenant mix for a duration.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase length in simulated time.
    pub duration: SimTime,
    /// Offered arrival rate, requests per simulated second.
    pub rate_rps: u64,
    /// Relative traffic weight per tenant (index-aligned with the tenant
    /// set). Empty means "all tenants equally".
    pub tenant_weights: Vec<u32>,
}

impl PhaseSpec {
    /// Mean inter-arrival gap in nanoseconds (`>= 1`).
    pub fn mean_gap_ns(&self) -> u64 {
        (1_000_000_000 / self.rate_rps.max(1)).max(1)
    }
}

/// Parses a phase schedule string: `;`-separated phases of the form
/// `<secs>s@<rate>` with an optional `x<w0>/<w1>/...` tenant-weight
/// suffix, e.g. `20s@6000x3/1;20s@12000x1/3`.
pub fn parse_phases(spec: &str) -> Result<Vec<PhaseSpec>, String> {
    let mut phases = Vec::new();
    for (i, part) in spec.split(';').enumerate() {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let err = |what: &str| format!("phase {} ('{part}'): {what}", i + 1);
        let (dur, rest) =
            part.split_once('@').ok_or_else(|| err("expected '<secs>s@<rate>[x<w>/<w>...]'"))?;
        let secs: u64 = dur
            .strip_suffix('s')
            .ok_or_else(|| err("duration must end in 's'"))?
            .parse()
            .map_err(|_| err("bad duration"))?;
        if secs == 0 {
            return Err(err("duration must be positive"));
        }
        let (rate_str, weights_str) = match rest.split_once('x') {
            Some((r, w)) => (r, Some(w)),
            None => (rest, None),
        };
        let rate_rps: u64 = rate_str.parse().map_err(|_| err("bad rate"))?;
        if rate_rps == 0 {
            return Err(err("rate must be positive"));
        }
        let tenant_weights = match weights_str {
            Some(w) => {
                let ws: Result<Vec<u32>, _> = w.split('/').map(str::parse).collect();
                let ws = ws.map_err(|_| err("bad tenant weights"))?;
                if ws.iter().all(|&x| x == 0) {
                    return Err(err("tenant weights must not all be zero"));
                }
                ws
            }
            None => Vec::new(),
        };
        phases.push(PhaseSpec { duration: SimTime::from_secs(secs), rate_rps, tenant_weights });
    }
    if phases.is_empty() {
        return Err("empty phase schedule".to_string());
    }
    Ok(phases)
}

/// Renders phases back into the CLI grammar accepted by
/// [`parse_phases`] (durations are rounded down to whole seconds, which
/// is lossless for parsed schedules).
pub fn format_phases(phases: &[PhaseSpec]) -> String {
    phases
        .iter()
        .map(|p| {
            let mut s = format!("{}s@{}", p.duration.as_nanos() / 1_000_000_000, p.rate_rps);
            if !p.tenant_weights.is_empty() {
                let ws: Vec<String> = p.tenant_weights.iter().map(|w| w.to_string()).collect();
                s.push('x');
                s.push_str(&ws.join("/"));
            }
            s
        })
        .collect::<Vec<String>>()
        .join(";")
}

/// One scheduled request arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// When the request was *supposed* to start (the open-loop schedule's
    /// timestamp — the coordinated-omission baseline).
    pub intended: SimTime,
    /// Index of the phase this arrival belongs to.
    pub phase: usize,
}

/// Iterator over the arrivals of a phase schedule.
///
/// Deterministic: the same phases, process, and seed yield the same
/// arrival stream. Gaps accumulate in nanoseconds; a phase ends when the
/// next intended arrival would cross its boundary, so phase boundaries
/// never split a request.
#[derive(Debug)]
pub struct ArrivalSchedule {
    phases: Vec<PhaseSpec>,
    process: ArrivalProcess,
    rng: StdRng,
    /// Intended time of the next arrival.
    cursor_ns: u64,
    phase: usize,
    /// Absolute end of the current phase.
    phase_end_ns: u64,
}

impl ArrivalSchedule {
    /// Creates the arrival stream for `phases`.
    pub fn new(phases: Vec<PhaseSpec>, process: ArrivalProcess, seed: u64) -> Self {
        assert!(!phases.is_empty(), "schedule needs at least one phase");
        let phase_end_ns = phases[0].duration.as_nanos();
        ArrivalSchedule {
            phases,
            process,
            rng: StdRng::seed_from_u64(seed),
            cursor_ns: 0,
            phase: 0,
            phase_end_ns,
        }
    }

    /// The phase specs driving this schedule.
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// Total scheduled duration across all phases.
    pub fn total_duration(&self) -> SimTime {
        self.phases.iter().fold(SimTime::ZERO, |acc, p| acc + p.duration)
    }

    /// Expected request count (rate x duration summed over phases) —
    /// exact for paced schedules, the mean for Poisson ones.
    pub fn expected_requests(&self) -> u64 {
        self.phases.iter().map(|p| p.rate_rps * p.duration.as_nanos() / 1_000_000_000).sum()
    }

    fn draw_gap(&mut self, mean_ns: u64) -> u64 {
        match self.process {
            ArrivalProcess::Paced => mean_ns,
            ArrivalProcess::Poisson => {
                // Inverse-CDF sample of Exp(1/mean): gap = -ln(1-U) * mean
                // with U in [0,1), so the argument stays in (0,1].
                let u: f64 = self.rng.gen();
                let gap = -(1.0 - u).ln() * mean_ns as f64;
                (gap as u64).max(1)
            }
        }
    }
}

impl Iterator for ArrivalSchedule {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        // Advance to the phase containing the cursor (a long Poisson gap
        // can overshoot an entire short phase).
        while self.cursor_ns >= self.phase_end_ns {
            if self.phase + 1 >= self.phases.len() {
                return None;
            }
            self.phase += 1;
            self.phase_end_ns += self.phases[self.phase].duration.as_nanos();
        }
        let arrival = Arrival { intended: SimTime::from_nanos(self.cursor_ns), phase: self.phase };
        let mean = self.phases[self.phase].mean_gap_ns();
        let gap = self.draw_gap(mean);
        self.cursor_ns += gap;
        Some(arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(secs: u64, rate: u64, weights: &[u32]) -> PhaseSpec {
        PhaseSpec {
            duration: SimTime::from_secs(secs),
            rate_rps: rate,
            tenant_weights: weights.to_vec(),
        }
    }

    #[test]
    fn paced_schedule_fires_exactly_rate_times_duration() {
        let sched = ArrivalSchedule::new(vec![phase(2, 1_000, &[])], ArrivalProcess::Paced, 1);
        let arrivals: Vec<Arrival> = sched.collect();
        assert_eq!(arrivals.len(), 2_000);
        // Exact mean spacing.
        assert_eq!(arrivals[0].intended, SimTime::ZERO);
        assert_eq!(arrivals[1].intended.as_nanos(), 1_000_000);
        assert_eq!(arrivals[1_999].intended.as_nanos(), 1_999 * 1_000_000);
    }

    #[test]
    fn phase_boundaries_switch_rate_and_index() {
        let sched = ArrivalSchedule::new(
            vec![phase(1, 100, &[3, 1]), phase(1, 400, &[1, 3])],
            ArrivalProcess::Paced,
            1,
        );
        let arrivals: Vec<Arrival> = sched.collect();
        let p0: Vec<&Arrival> = arrivals.iter().filter(|a| a.phase == 0).collect();
        let p1: Vec<&Arrival> = arrivals.iter().filter(|a| a.phase == 1).collect();
        assert_eq!(p0.len(), 100);
        assert_eq!(p1.len(), 400);
        // Every phase-1 arrival is intended inside the second second.
        assert!(p1.iter().all(|a| a.intended >= SimTime::from_secs(1)));
        assert!(p1.iter().all(|a| a.intended < SimTime::from_secs(2)));
    }

    #[test]
    fn poisson_schedule_is_deterministic_and_near_rate() {
        let a: Vec<Arrival> =
            ArrivalSchedule::new(vec![phase(5, 2_000, &[])], ArrivalProcess::Poisson, 42).collect();
        let b: Vec<Arrival> =
            ArrivalSchedule::new(vec![phase(5, 2_000, &[])], ArrivalProcess::Poisson, 42).collect();
        assert_eq!(a, b, "same seed, same stream");
        // Mean rate within 5% over 10k expected arrivals.
        let expected = 10_000f64;
        assert!(
            (a.len() as f64 - expected).abs() / expected < 0.05,
            "got {} arrivals, expected ~{expected}",
            a.len()
        );
        let c: Vec<Arrival> =
            ArrivalSchedule::new(vec![phase(5, 2_000, &[])], ArrivalProcess::Poisson, 43).collect();
        assert_ne!(a, c, "different seed, different stream");
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let arrivals: Vec<Arrival> = ArrivalSchedule::new(
            vec![phase(1, 5_000, &[]), phase(1, 500, &[])],
            ArrivalProcess::Poisson,
            7,
        )
        .collect();
        for w in arrivals.windows(2) {
            assert!(w[1].intended > w[0].intended);
        }
    }

    #[test]
    fn parse_phases_round_trips_the_cli_grammar() {
        let phases = parse_phases("20s@6000x3/1;20s@12000x1/3").unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].duration, SimTime::from_secs(20));
        assert_eq!(phases[0].rate_rps, 6_000);
        assert_eq!(phases[0].tenant_weights, vec![3, 1]);
        assert_eq!(phases[1].tenant_weights, vec![1, 3]);
        // Weights are optional.
        let bare = parse_phases("5s@100").unwrap();
        assert!(bare[0].tenant_weights.is_empty());
    }

    #[test]
    fn format_phases_round_trips_through_parse() {
        for spec in ["20s@6000x3/1;20s@12000x1/3", "5s@100", "1s@7x0/2/5"] {
            let phases = parse_phases(spec).unwrap();
            assert_eq!(format_phases(&phases), spec);
        }
    }

    #[test]
    fn parse_phases_rejects_malformed_specs() {
        for bad in ["", "20@6000", "0s@100", "5s@0", "5s@100x0/0", "5s@abc"] {
            assert!(parse_phases(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn expected_requests_sums_phases() {
        let sched = ArrivalSchedule::new(
            vec![phase(2, 1_000, &[]), phase(3, 2_000, &[])],
            ArrivalProcess::Paced,
            1,
        );
        assert_eq!(sched.expected_requests(), 2_000 + 6_000);
        assert_eq!(sched.total_duration(), SimTime::from_secs(5));
    }
}
