//! `rolp-serve`: an open-loop request-serving harness for the ROLP
//! reproduction.
//!
//! The paper's motivation is *latency-sensitive* big-data services, but
//! batch drivers (`rolp-sim`, the bench suite) measure pause
//! distributions, not what a request actually experiences. This crate
//! closes that gap:
//!
//! - [`schedule`] — open-loop arrival schedules (Poisson or paced) with
//!   multi-phase rate ramps and tenant-weight flips, the traffic events
//!   the profiler must re-learn through.
//! - [`tenant`] — multi-tenant request handlers composed into one guest
//!   program with unioned profiling filters.
//! - [`latency`] — coordinated-omission-corrected latency recording and
//!   per-request service-time decomposition (app / GC / profiler / JIT)
//!   from the telemetry plane's bucket deltas.
//! - [`server`] — the serving loop: fires the schedule at a runtime,
//!   tracks SLO attainment exactly, and keeps a decision-table digest
//!   timeline to measure re-convergence after traffic shifts.
//! - [`report`] — the `rolp-serve-v1` JSON summary consumed by
//!   `scripts/slo_gate.py`.

pub mod latency;
pub mod report;
pub mod schedule;
pub mod server;
pub mod tenant;

pub use latency::{BucketSnapshot, Decomposition, LatencyRecorder};
pub use report::render_report;
pub use schedule::{
    format_phases, parse_phases, Arrival, ArrivalProcess, ArrivalSchedule, PhaseSpec,
};
pub use server::{
    serve, serve_with, DigestChange, PhaseShiftRecord, ServeConfig, ServeOutcome, ShiftConvergence,
};
pub use tenant::{default_tenants, TenantSet};
