//! The `rolp-serve-v1` run summary.
//!
//! One JSON document per serving run, consumed by `scripts/slo_gate.py`
//! (CI's `serve-smoke` job) and by `bench_gate.py`'s service-mode rows.
//! Rendered with the same hand-rolled writer as every other exporter in
//! the repo; nested arrays are pre-rendered and spliced with
//! [`JsonObject::raw`].

use rolp_trace::json::JsonObject;

use crate::schedule::format_phases;
use crate::server::{ServeConfig, ServeOutcome};
use crate::ArrivalProcess;

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Renders the `rolp-serve-v1` summary for one run.
pub fn render_report(cfg: &ServeConfig, out: &ServeOutcome) -> String {
    let mut obj = JsonObject::new();
    obj.str("schema", "rolp-serve-v1")
        .str("collector", out.report.collector)
        .u64("scale", cfg.scale.divisor())
        .u64("threads", cfg.threads as u64)
        .u64("seed", cfg.seed)
        .str(
            "process",
            match cfg.process {
                ArrivalProcess::Paced => "paced",
                ArrivalProcess::Poisson => "poisson",
            },
        )
        .str("phases", &format_phases(&cfg.phases))
        .u64("requests", out.requests)
        .f64("elapsed_ms", out.elapsed.as_millis_f64())
        .u64("ops", out.report.ops)
        .f64("profiling_overhead", out.report.profiling_overhead);

    // SLO ladder: exact per-threshold attainment.
    let slo_rows: Vec<String> = out
        .latency
        .attainment()
        .iter()
        .map(|&(threshold_ns, hits, frac)| {
            let mut row = JsonObject::new();
            row.f64("threshold_ms", ms(threshold_ns)).u64("hits", hits).f64("attainment", frac);
            row.finish()
        })
        .collect();
    obj.raw("slo", &format!("[{}]", slo_rows.join(",")));

    let mut lat = JsonObject::new();
    let corr = out.latency.corrected();
    lat.f64("corrected_p50_ms", ms(corr.percentile(50.0)))
        .f64("corrected_p90_ms", ms(corr.percentile(90.0)))
        .f64("corrected_p99_ms", ms(corr.percentile(99.0)))
        .f64("corrected_p999_ms", ms(corr.percentile(99.9)))
        .f64("corrected_max_ms", ms(corr.percentile(100.0)))
        .f64("service_p99_ms", ms(out.latency.service().percentile(99.0)))
        .f64("queue_p99_ms", ms(out.latency.queue().percentile(99.0)));
    obj.raw("latency", &lat.finish());

    // Decomposition: the per-request bucket deltas, summed over the run.
    // `decomposed_ms` must equal `service_wall_ms` within the gate
    // tolerance (the telemetry plane's partition invariant).
    let d = out.latency.decomposed();
    let wall = out.latency.service_wall_ns() as f64;
    let decomposed = out.latency.decomposed_ns() as f64;
    let rel_err = if wall > 0.0 { (wall - decomposed).abs() / wall } else { 0.0 };
    let mut dec = JsonObject::new();
    dec.f64("app_ms", ms(d.app_ns))
        .f64("gc_ms", ms(d.gc_ns))
        .f64("profiler_ms", ms(d.profiler_ns))
        .f64("jit_ms", ms(d.jit_ns))
        .f64("idle_ms", ms(d.idle_ns))
        .f64("service_wall_ms", wall / 1e6)
        .f64("decomposed_ms", decomposed / 1e6)
        .f64("rel_error", rel_err);
    obj.raw("decomposition", &dec.finish());

    let shift_rows: Vec<String> = out
        .shifts
        .iter()
        .map(|s| {
            let mut row = JsonObject::new();
            row.f64("at_ms", s.at.as_millis_f64())
                .u64("phase", s.phase as u64)
                .u64("rate_rps", s.rate_rps)
                .u64("requests_before", s.requests_before)
                .u64("epochs_at_shift", s.epochs_at_shift);
            row.finish()
        })
        .collect();
    obj.raw("shifts", &format!("[{}]", shift_rows.join(",")));

    let conv_rows: Vec<String> = out
        .reconvergence()
        .iter()
        .map(|c| {
            let mut row = JsonObject::new();
            row.u64("phase", c.phase as u64)
                .u64("epochs_to_reconverge", c.epochs_to_reconverge)
                .u64("changes", c.changes);
            row.finish()
        })
        .collect();
    obj.raw("reconvergence", &format!("[{}]", conv_rows.join(",")));

    let mut decisions = JsonObject::new();
    decisions
        .u64("digest_changes", out.digest_changes.len() as u64)
        .u64("final_version", out.digest_changes.last().map(|c| c.version).unwrap_or(0))
        .u64("final_digest", out.digest_changes.last().map(|c| c.digest).unwrap_or(0))
        .f64("stable_tail_ms", out.stable_tail().as_millis_f64());
    obj.raw("decisions", &decisions.finish());

    let tenant_rows: Vec<String> = out
        .tenant_names
        .iter()
        .zip(&out.tenant_requests)
        .map(|(name, &n)| {
            let mut row = JsonObject::new();
            row.str("name", name).u64("requests", n);
            row.finish()
        })
        .collect();
    obj.raw("tenants", &format!("[{}]", tenant_rows.join(",")));

    let mut gc = JsonObject::new();
    gc.u64("cycles", out.report.gc_cycles)
        .u64("pauses", out.report.pauses as u64)
        .f64("total_paused_ms", out.report.total_paused.as_millis_f64());
    obj.raw("gc", &gc.finish());

    obj.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::parse_phases;
    use crate::server::serve;
    use crate::tenant::default_tenants;
    use rolp::runtime::CollectorKind;
    use rolp_metrics::SimScale;

    #[test]
    fn report_is_valid_json_with_the_gate_fields() {
        let scale = SimScale::new(4096);
        let mut cfg = ServeConfig::new(CollectorKind::RolpNg2c, scale);
        cfg.phases = parse_phases("1s@200;1s@400").expect("phases");
        let out = serve(&cfg, &mut default_tenants(scale));
        let json = render_report(&cfg, &out);
        // Spot-check shape without a full JSON parser: the gate script
        // (Python) does the structural validation in CI.
        for key in [
            "\"schema\":\"rolp-serve-v1\"",
            "\"slo\":[{",
            "\"decomposition\":{",
            "\"reconvergence\":[",
            "\"shifts\":[{",
            "\"corrected_p99_ms\":",
            "\"rel_error\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
