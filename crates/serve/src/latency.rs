//! Per-request latency accounting with coordinated-omission correction
//! and hierarchical decomposition.
//!
//! Every request is charged from its *intended* start (the open-loop
//! schedule's timestamp), not its actual start: when a GC pause stalls
//! the server, every request whose intended arrival fell during or after
//! the stall inherits the queueing delay. Recording only service time
//! (actual start to completion) would hide exactly the tail the paper
//! targets — the classic coordinated-omission mistake.
//!
//! The service time of each request is further decomposed from the
//! telemetry plane's time buckets: the first nine [`Bucket`]s partition
//! clock-backed time exactly (an invariant `rolp-telemetry` tests), so
//! the per-request bucket deltas must sum to the request's service wall
//! time — `scripts/slo_gate.py` enforces this end to end.

use rolp_metrics::{Histogram, SimTime};
use rolp_telemetry::{Bucket, ThreadCells};

/// Coordinated-omission-corrected latency: completion minus *intended*
/// start. This is what SLO attainment is measured against.
pub fn corrected_latency_ns(intended: SimTime, completion: SimTime) -> u64 {
    completion.saturating_sub(intended).as_nanos()
}

/// Queueing delay: how late the request actually started.
pub fn queue_delay_ns(intended: SimTime, actual_start: SimTime) -> u64 {
    actual_start.saturating_sub(intended).as_nanos()
}

/// A snapshot of the clock-backed time buckets, taken immediately before
/// a request runs so the post-request deltas decompose its service time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BucketSnapshot {
    times: [u64; Bucket::COUNT],
}

impl BucketSnapshot {
    /// Captures the current cumulative per-bucket times.
    pub fn capture(cells: &ThreadCells) -> Self {
        let mut times = [0u64; Bucket::COUNT];
        for b in Bucket::ALL {
            times[b.index()] = cells.time(b);
        }
        BucketSnapshot { times }
    }

    /// The decomposition of the time elapsed since this snapshot.
    pub fn delta(&self, cells: &ThreadCells) -> Decomposition {
        let d = |b: Bucket| cells.time(b) - self.times[b.index()];
        Decomposition {
            app_ns: d(Bucket::MutatorApp),
            gc_ns: d(Bucket::GcMark) + d(Bucket::GcEvac) + d(Bucket::GcRemset) + d(Bucket::GcOther),
            profiler_ns: d(Bucket::MutatorProfiling) + d(Bucket::GcProfiling),
            jit_ns: d(Bucket::JitCompile),
            idle_ns: d(Bucket::Idle),
        }
    }
}

/// One request's service time split by mechanism. `gc_ns` is
/// stop-the-world pause time, `profiler_ns` is ROLP's own footprint
/// (mutator-side profiling instructions + GC-side survivor tracking).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Decomposition {
    /// Guest computation (the application itself).
    pub app_ns: u64,
    /// Stop-the-world GC pause time (mark + evacuate + remset + other).
    pub gc_ns: u64,
    /// Profiler stall time (mutator profiling + GC survivor tracking).
    pub profiler_ns: u64,
    /// JIT compilation charged to the request.
    pub jit_ns: u64,
    /// Idle time (should be 0 inside a request; pacing happens between).
    pub idle_ns: u64,
}

impl Decomposition {
    /// Total decomposed nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.app_ns + self.gc_ns + self.profiler_ns + self.jit_ns + self.idle_ns
    }

    /// Accumulates another decomposition into this one.
    pub fn accumulate(&mut self, other: &Decomposition) {
        self.app_ns += other.app_ns;
        self.gc_ns += other.gc_ns;
        self.profiler_ns += other.profiler_ns;
        self.jit_ns += other.jit_ns;
        self.idle_ns += other.idle_ns;
    }
}

/// Aggregated latency statistics for one serving run.
#[derive(Debug)]
pub struct LatencyRecorder {
    /// Corrected latency (completion - intended), the SLO series.
    corrected: Histogram,
    /// Service time (completion - actual start).
    service: Histogram,
    /// Queueing delay (actual start - intended).
    queue: Histogram,
    /// SLO thresholds, ascending, in nanoseconds.
    slo_ns: Vec<u64>,
    /// Exact count of requests meeting each threshold.
    slo_hits: Vec<u64>,
    total: u64,
    /// Exact sums for the decomposition-vs-wall invariant.
    service_wall_ns: u128,
    decomposed: Decomposition,
    decomposed_ns: u128,
}

impl LatencyRecorder {
    /// A recorder gating against the given SLO thresholds (milliseconds).
    pub fn new(slo_ms: &[f64]) -> Self {
        let mut slo_ns: Vec<u64> = slo_ms.iter().map(|ms| (ms * 1e6) as u64).collect();
        slo_ns.sort_unstable();
        let n = slo_ns.len();
        LatencyRecorder {
            corrected: Histogram::new(),
            service: Histogram::new(),
            queue: Histogram::new(),
            slo_ns,
            slo_hits: vec![0; n],
            total: 0,
            service_wall_ns: 0,
            decomposed: Decomposition::default(),
            decomposed_ns: 0,
        }
    }

    /// Records one completed request.
    pub fn record(
        &mut self,
        intended: SimTime,
        actual_start: SimTime,
        completion: SimTime,
        decomp: &Decomposition,
    ) {
        let corrected = corrected_latency_ns(intended, completion);
        let service = completion.saturating_sub(actual_start).as_nanos();
        self.corrected.record(corrected);
        self.service.record(service);
        self.queue.record(queue_delay_ns(intended, actual_start));
        for (i, &t) in self.slo_ns.iter().enumerate() {
            if corrected <= t {
                self.slo_hits[i] += 1;
            }
        }
        self.total += 1;
        self.service_wall_ns += service as u128;
        self.decomposed.accumulate(decomp);
        self.decomposed_ns += decomp.total_ns() as u128;
    }

    /// Requests recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The corrected-latency histogram (SLO series).
    pub fn corrected(&self) -> &Histogram {
        &self.corrected
    }

    /// The service-time histogram.
    pub fn service(&self) -> &Histogram {
        &self.service
    }

    /// The queueing-delay histogram.
    pub fn queue(&self) -> &Histogram {
        &self.queue
    }

    /// `(threshold_ns, hits, attainment)` per configured SLO, ascending.
    pub fn attainment(&self) -> Vec<(u64, u64, f64)> {
        self.slo_ns
            .iter()
            .zip(&self.slo_hits)
            .map(|(&t, &h)| {
                let frac = if self.total == 0 { 1.0 } else { h as f64 / self.total as f64 };
                (t, h, frac)
            })
            .collect()
    }

    /// Requests that missed the tightest (first) SLO threshold.
    pub fn primary_misses(&self) -> u64 {
        if self.slo_hits.is_empty() {
            0
        } else {
            self.total - self.slo_hits[0]
        }
    }

    /// Total service wall time across requests, nanoseconds.
    pub fn service_wall_ns(&self) -> u128 {
        self.service_wall_ns
    }

    /// Accumulated decomposition across requests.
    pub fn decomposed(&self) -> &Decomposition {
        &self.decomposed
    }

    /// Total decomposed nanoseconds across requests. The serve gate
    /// asserts this equals [`LatencyRecorder::service_wall_ns`] within
    /// tolerance (the telemetry plane's partition invariant, observed
    /// per request end to end).
    pub fn decomposed_ns(&self) -> u128 {
        self.decomposed_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn corrected_latency_charges_from_intended_start() {
        // Request intended at 100ms, started at 140ms (queued behind a
        // pause), finished at 141ms: service is 1ms, corrected is 41ms.
        assert_eq!(corrected_latency_ns(t(100), t(141)), 41_000_000);
        assert_eq!(queue_delay_ns(t(100), t(140)), 40_000_000);
        // An on-time request has zero queueing delay.
        assert_eq!(queue_delay_ns(t(100), t(100)), 0);
    }

    /// The canonical coordinated-omission scenario: a server that
    /// answers instantly except for one 100ms stall. Uncorrected
    /// (service-time) percentiles see a single slow request;
    /// corrected percentiles see every request scheduled during the
    /// stall inherit its share of the delay.
    #[test]
    fn stalled_server_inflates_corrected_tail_but_not_service_tail() {
        let mut rec = LatencyRecorder::new(&[10.0]);
        let d = Decomposition::default();
        // 1000 requests intended 1ms apart. The server stalls from
        // t=500ms to t=600ms; requests intended in [500,600) all start
        // at 600ms and complete instantly.
        for i in 0..1_000u64 {
            let intended = SimTime::from_millis(i);
            let actual = if (500..600).contains(&i) { t(600) } else { intended };
            let completion = actual + SimTime::from_micros(10);
            rec.record(intended, actual, completion, &d);
        }
        // Service time is flat: every request took 10us of service.
        assert!(rec.service().percentile(99.0) < 1_000_000);
        // Corrected p95: 10% of requests carry up to 100ms of queueing,
        // so the p95 lands well above the service tail...
        let p95 = rec.corrected().percentile(95.0);
        assert!(p95 > 10_000_000, "corrected p95 {p95}ns should exceed 10ms");
        // ...and attainment against the 10ms SLO reflects the late
        // requests, not the single stall: i in [500, 590] have corrected
        // latency (600-i)ms + 10us > 10ms — 91 misses.
        let (_, hits, frac) = rec.attainment()[0];
        assert_eq!(rec.total() - hits, 91, "requests queued > 10ms miss the SLO");
        assert!((0.90..0.92).contains(&frac), "attainment {frac}");
        assert_eq!(rec.primary_misses(), 91);
    }

    #[test]
    fn attainment_is_exact_per_threshold() {
        let mut rec = LatencyRecorder::new(&[1.0, 10.0]);
        let d = Decomposition::default();
        // Latencies: 0.5ms, 5ms, 50ms.
        for ms in [0u64, 4, 49] {
            let intended = SimTime::ZERO;
            rec.record(intended, intended, t(ms) + SimTime::from_micros(500), &d);
        }
        let att = rec.attainment();
        assert_eq!(att[0].0, 1_000_000);
        assert_eq!(att[0].1, 1, "one request under 1ms");
        assert_eq!(att[1].1, 2, "two requests under 10ms");
        assert_eq!(rec.primary_misses(), 2);
    }

    #[test]
    fn decomposition_sums_and_accumulates() {
        let a = Decomposition { app_ns: 5, gc_ns: 3, profiler_ns: 2, jit_ns: 1, idle_ns: 0 };
        assert_eq!(a.total_ns(), 11);
        let mut acc = Decomposition::default();
        acc.accumulate(&a);
        acc.accumulate(&a);
        assert_eq!(acc.total_ns(), 22);
        assert_eq!(acc.gc_ns, 6);
    }

    #[test]
    fn bucket_snapshot_decomposes_deltas() {
        use rolp_telemetry::Telemetry;
        let tel = Telemetry::new();
        tel.add(Bucket::MutatorApp, 100);
        let snap = BucketSnapshot::capture(tel.cells());
        tel.add(Bucket::MutatorApp, 40);
        tel.add(Bucket::GcEvac, 25);
        tel.add(Bucket::GcMark, 5);
        tel.add(Bucket::MutatorProfiling, 7);
        let d = snap.delta(tel.cells());
        assert_eq!(d.app_ns, 40, "pre-snapshot time excluded");
        assert_eq!(d.gc_ns, 30);
        assert_eq!(d.profiler_ns, 7);
        assert_eq!(d.total_ns(), 77);
    }

    #[test]
    fn tlab_refill_stalls_decompose_into_gc_not_app() {
        // The allocation fast path charges TLAB refill stalls to
        // `Bucket::GcOther` (see `rolp-gc`'s refill charging): a
        // per-request decomposition spanning a refill must report the
        // stall under `gc_ns`, never `app_ns`, while the sum-to-wall
        // partition stays exact.
        use rolp_telemetry::Telemetry;
        let tel = Telemetry::new();
        let snap = BucketSnapshot::capture(tel.cells());
        tel.add(Bucket::MutatorApp, 500);
        tel.add(Bucket::GcOther, 160); // a mid-request refill stall
        let d = snap.delta(tel.cells());
        assert_eq!(d.app_ns, 500, "app time excludes the refill stall");
        assert_eq!(d.gc_ns, 160, "the refill stall is GC/profiler overhead");
        assert_eq!(d.total_ns(), 660, "partition stays exact");
    }
}
