//! Multi-tenant request handlers.
//!
//! The service harness co-hosts several tenant workloads in one runtime
//! (the paper's motivating deployment: latency-sensitive big-data
//! services sharing a JVM-like heap). Each tenant contributes its own
//! guest program namespace to a shared [`ProgramBuilder`], its own
//! Table 1 profiling filter (unioned across tenants for ROLP runs), and
//! its own request handler; the arrival schedule's per-phase tenant
//! weights steer traffic between them, so a weight flip mid-run is a
//! hot-tenant migration the profiler must re-learn.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rolp::runtime::JvmRuntime;
use rolp::PackageFilters;
use rolp_metrics::SimScale;
use rolp_vm::{MutatorCtx, Program, ProgramBuilder};
use rolp_workloads::presets;
use rolp_workloads::{CassandraMix, Workload};

/// A set of co-hosted tenant workloads sharing one guest program.
///
/// Tenants must use distinct guest package namespaces (e.g. one
/// Cassandra-preset tenant plus one Lucene-preset tenant) so their
/// method declarations compose without colliding.
pub struct TenantSet {
    tenants: Vec<Box<dyn Workload>>,
    rng: StdRng,
}

impl TenantSet {
    /// Wraps `tenants`; `seed` drives the weighted tenant picker.
    pub fn new(tenants: Vec<Box<dyn Workload>>, seed: u64) -> Self {
        assert!(!tenants.is_empty(), "tenant set needs at least one tenant");
        TenantSet { tenants, rng: StdRng::seed_from_u64(seed) }
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Always false: construction rejects empty sets.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Tenant display names, index-aligned with the weight vectors.
    pub fn names(&self) -> Vec<String> {
        self.tenants.iter().map(|t| t.name()).collect()
    }

    /// Builds the composite guest program: every tenant declares its own
    /// namespace into one builder.
    pub fn build_program(&mut self) -> Program {
        let mut b = ProgramBuilder::new();
        for t in &mut self.tenants {
            t.declare_program(&mut b);
        }
        b.build()
    }

    /// The union of every tenant's paper profiling filter: a package any
    /// tenant asked to profile is profiled.
    pub fn union_filters(&self) -> PackageFilters {
        let mut iter = self.tenants.iter();
        let first = iter.next().expect("non-empty").profiling_filters();
        iter.fold(first, |acc, t| acc.union(&t.profiling_filters()))
    }

    /// Runs every tenant's setup against the shared runtime.
    pub fn setup_all(&mut self, rt: &mut JvmRuntime) {
        for t in &mut self.tenants {
            t.setup(rt);
        }
    }

    /// Picks a tenant index by the phase's weight vector. An empty (or
    /// short) vector weights the unlisted tenants at 1; an all-zero
    /// vector falls back to uniform.
    pub fn pick(&mut self, weights: &[u32]) -> usize {
        let w = |i: usize| -> u64 {
            if weights.is_empty() {
                1
            } else {
                weights.get(i).copied().unwrap_or(1) as u64
            }
        };
        let total: u64 = (0..self.tenants.len()).map(w).sum();
        if total == 0 {
            return self.rng.gen_range(0..self.tenants.len());
        }
        let mut roll = self.rng.gen_range(0..total);
        for i in 0..self.tenants.len() {
            let wi = w(i);
            if roll < wi {
                return i;
            }
            roll -= wi;
        }
        self.tenants.len() - 1
    }

    /// Serves one request on tenant `idx`; returns completed operations.
    pub fn tick(&mut self, idx: usize, ctx: &mut MutatorCtx<'_>) -> u64 {
        self.tenants[idx].tick(ctx)
    }
}

/// The default two-tenant serving mix: a write-intensive Cassandra
/// tenant and a Lucene indexing tenant, both with internal op pacing
/// disabled — in service mode the *arrival schedule* paces requests, so
/// a handler sleeping on its own would double-count think time.
pub fn default_tenants(scale: SimScale) -> TenantSet {
    let mut cass = presets::cassandra(CassandraMix::WriteIntensive, scale);
    cass.params_mut().op_pacing_ns = 0;
    let mut luc = presets::lucene(scale);
    luc.params_mut().op_pacing_ns = 0;
    TenantSet::new(vec![Box::new(cass), Box::new(luc)], 0x5EC7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolp_metrics::SimScale;

    fn small_set() -> TenantSet {
        default_tenants(SimScale::new(1024))
    }

    #[test]
    fn composite_program_holds_both_namespaces() {
        let mut set = small_set();
        let program = set.build_program();
        let packages: Vec<&str> = program.methods().map(|m| program.method(m).package()).collect();
        assert!(packages.iter().any(|p| p.starts_with("cassandra.")));
        assert!(packages.iter().any(|p| p.starts_with("lucene.")));
    }

    #[test]
    fn union_filter_covers_every_tenant() {
        let set = small_set();
        let f = set.union_filters();
        assert!(f.matches("cassandra.db"));
        assert!(f.matches("lucene.store"));
        assert!(!f.matches("unrelated.pkg"));
    }

    #[test]
    fn weighted_pick_follows_phase_weights() {
        let mut set = small_set();
        let mut counts = [0u64; 2];
        for _ in 0..10_000 {
            counts[set.pick(&[3, 1])] += 1;
        }
        let frac = counts[0] as f64 / 10_000.0;
        assert!((0.70..0.80).contains(&frac), "tenant 0 got {frac} of traffic");
        // A zero weight shuts a tenant off entirely.
        for _ in 0..1_000 {
            assert_eq!(set.pick(&[0, 1]), 1);
        }
        // Empty weights are uniform.
        let mut uni = [0u64; 2];
        for _ in 0..10_000 {
            uni[set.pick(&[])] += 1;
        }
        assert!(uni[0] > 4_000 && uni[1] > 4_000);
    }
}
