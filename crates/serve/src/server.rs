//! The open-loop serving loop.
//!
//! [`serve`] assembles a runtime (any collector), composes the tenant
//! set into one guest program, and then fires the arrival schedule at
//! it: each request idles the clock up to its intended start (open-loop
//! — the schedule never waits for the server), runs one tenant tick,
//! and records its coordinated-omission-corrected latency plus the
//! hierarchical decomposition of its service time from the telemetry
//! plane's bucket deltas.
//!
//! The loop also keeps a decision timeline: every published
//! [`DecisionTable`](rolp_vm::DecisionTable) version/digest change is
//! timestamped against the inference-epoch counter, and every phase
//! shift records the epoch it happened at, so [`ServeOutcome::reconvergence`]
//! can answer the acceptance question "how many inference epochs after a
//! traffic shift did the decisions settle?".

use std::sync::Arc;

use rolp::runtime::{CollectorKind, JvmRuntime, RunReport, RuntimeConfig};
use rolp::{DecisionProfile, GovernorConfig};
use rolp_heap::HeapConfig;
use rolp_metrics::{PauseRecorder, SimScale, SimTime};
use rolp_telemetry::{CounterId, HistId, MetricsSnapshot};
use rolp_trace::{EventKind, TraceEvent};
use rolp_vm::{CostModel, ThreadId};

use crate::latency::{corrected_latency_ns, queue_delay_ns, BucketSnapshot, LatencyRecorder};
use crate::schedule::{ArrivalProcess, ArrivalSchedule, PhaseSpec};
use crate::tenant::TenantSet;

/// Configuration for one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Collector under test.
    pub collector: CollectorKind,
    /// Heap sizing.
    pub heap: HeapConfig,
    /// Experiment scale (cost model + side-table divisor).
    pub scale: SimScale,
    /// Guest threads to rotate requests across.
    pub threads: u32,
    /// GC worker override.
    pub gc_workers: Option<usize>,
    /// Sharded OLD-table backend override.
    pub table_shards: Option<usize>,
    /// Warm-start profile (`--profile-in`).
    pub offline_profile: Option<DecisionProfile>,
    /// Overhead governor.
    pub governor: Option<GovernorConfig>,
    /// Inference-period override, in GC cycles (`None` keeps the
    /// profiler default). Short smoke runs shrink this so several
    /// epochs fit into seconds of simulated traffic.
    pub inference_period: Option<u64>,
    /// Arrival process.
    pub process: ArrivalProcess,
    /// Traffic phases (rates, durations, tenant weights).
    pub phases: Vec<PhaseSpec>,
    /// SLO thresholds in milliseconds (first = primary).
    pub slo_ms: Vec<f64>,
    /// Seed for the arrival draw and runtime JIT randomness.
    pub seed: u64,
    /// Record a flight-recorder trace.
    pub trace_enabled: bool,
    /// TLAB chunk size in bytes; 0 disables the allocation fast path.
    pub tlab_bytes: usize,
    /// Hard cap on requests (safety valve; `u64::MAX` = schedule-bound).
    pub max_requests: u64,
}

impl ServeConfig {
    /// Defaults for `collector` at `scale`: the big-data heap, four guest
    /// threads, a Poisson diurnal ramp with a hot-tenant flip in the
    /// middle phase, and a 10/25/50 ms SLO ladder.
    pub fn new(collector: CollectorKind, scale: SimScale) -> Self {
        ServeConfig {
            collector,
            heap: rolp_workloads::presets::bigdata_heap(scale),
            scale,
            threads: 4,
            gc_workers: None,
            table_shards: None,
            offline_profile: None,
            governor: None,
            inference_period: None,
            process: ArrivalProcess::Poisson,
            phases: crate::schedule::parse_phases("10s@3000x3/1;10s@6000x1/3;10s@3000x3/1")
                .expect("default schedule parses"),
            slo_ms: vec![10.0, 25.0, 50.0],
            seed: 42,
            trace_enabled: false,
            tlab_bytes: rolp_heap::DEFAULT_TLAB_BYTES,
            max_requests: u64::MAX,
        }
    }
}

/// One traffic phase shift, as observed by the serving loop.
#[derive(Debug, Clone, Copy)]
pub struct PhaseShiftRecord {
    /// Server clock when the shift was taken.
    pub at: SimTime,
    /// New phase index.
    pub phase: u32,
    /// New offered rate.
    pub rate_rps: u64,
    /// Requests completed before the shift.
    pub requests_before: u64,
    /// Inference epochs completed at the shift.
    pub epochs_at_shift: u64,
}

/// One decision-table publication observed by the serving loop.
#[derive(Debug, Clone, Copy)]
pub struct DigestChange {
    /// Server clock when the new table was first observed.
    pub at: SimTime,
    /// Published table version.
    pub version: u64,
    /// FNV digest of the published rows.
    pub digest: u64,
    /// Inference epochs completed at observation.
    pub epochs: u64,
}

/// Re-convergence verdict for one phase shift.
#[derive(Debug, Clone, Copy)]
pub struct ShiftConvergence {
    /// Phase index entered by the shift.
    pub phase: u32,
    /// Inference epochs between the shift and the *last* digest change
    /// before the next shift (or run end): how long the profiler kept
    /// revising decisions after the traffic moved.
    pub epochs_to_reconverge: u64,
    /// Digest changes observed in the window.
    pub changes: u64,
}

/// Everything one serving run produces.
pub struct ServeOutcome {
    /// End-of-run runtime report.
    pub report: RunReport,
    /// Per-request latency statistics.
    pub latency: LatencyRecorder,
    /// Requests served.
    pub requests: u64,
    /// Traffic phase shifts taken.
    pub shifts: Vec<PhaseShiftRecord>,
    /// Decision-table digest timeline (ROLP runs; empty otherwise).
    pub digest_changes: Vec<DigestChange>,
    /// Tenant display names.
    pub tenant_names: Vec<String>,
    /// Requests routed to each tenant.
    pub tenant_requests: Vec<u64>,
    /// Flight-recorder events (empty unless tracing was enabled).
    pub trace: Vec<TraceEvent>,
    /// Total simulated serving time.
    pub elapsed: SimTime,
    /// Telemetry snapshots published during the run, oldest first.
    pub metrics: Vec<Arc<MetricsSnapshot>>,
    /// GC pause recorder (for `--stats-json` summaries).
    pub pauses: PauseRecorder,
    /// The profile learned during the run (`None` without a profiler) —
    /// lets a serving run warm-start the next one (`--profile-out`).
    pub profile: Option<DecisionProfile>,
}

impl ServeOutcome {
    /// Per-shift re-convergence: for each phase shift, the number of
    /// inference epochs until the decision digest went quiet (stayed
    /// unchanged through the rest of the shift's window).
    pub fn reconvergence(&self) -> Vec<ShiftConvergence> {
        self.shifts
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let window_end = self.shifts.get(i + 1).map(|n| n.at).unwrap_or(self.elapsed);
                let in_window: Vec<&DigestChange> = self
                    .digest_changes
                    .iter()
                    .filter(|c| c.at >= s.at && c.at < window_end)
                    .collect();
                let epochs_to_reconverge = in_window
                    .last()
                    .map(|c| c.epochs.saturating_sub(s.epochs_at_shift))
                    .unwrap_or(0);
                ShiftConvergence {
                    phase: s.phase,
                    epochs_to_reconverge,
                    changes: in_window.len() as u64,
                }
            })
            .collect()
    }

    /// Simulated time from the last digest change to run end (the whole
    /// run when the digest never changed): how long the final decision
    /// table stayed stable.
    pub fn stable_tail(&self) -> SimTime {
        match self.digest_changes.last() {
            Some(c) => self.elapsed.saturating_sub(c.at),
            None => self.elapsed,
        }
    }
}

/// Runs the open-loop serving loop to completion.
pub fn serve(cfg: &ServeConfig, tenants: &mut TenantSet) -> ServeOutcome {
    serve_with(cfg, tenants, |_| {})
}

/// [`serve`] with a hook that runs once the runtime is assembled, before
/// the first request fires — the `rolp-serve` binary uses it to arm its
/// crash-flush guard against the live telemetry registry.
pub fn serve_with(
    cfg: &ServeConfig,
    tenants: &mut TenantSet,
    on_start: impl FnOnce(&JvmRuntime),
) -> ServeOutcome {
    let program = tenants.build_program();
    let mut config = RuntimeConfig {
        collector: cfg.collector,
        heap: cfg.heap.clone(),
        cost: CostModel::scaled(cfg.scale),
        threads: cfg.threads.max(1),
        gc_workers: cfg.gc_workers,
        seed: cfg.seed,
        side_table_scale: cfg.scale.divisor(),
        trace_enabled: cfg.trace_enabled,
        tlab_bytes: cfg.tlab_bytes,
        ..Default::default()
    };
    config.rolp.table_shards = cfg.table_shards;
    config.rolp.governor = cfg.governor.clone();
    if let Some(period) = cfg.inference_period {
        config.rolp.inference_period = period.max(1);
    }
    config.rolp.offline_profile = cfg.offline_profile.clone();
    if cfg.collector == CollectorKind::RolpNg2c && config.rolp.filters.is_unfiltered() {
        config.rolp.filters = tenants.union_filters();
    }
    let threads = config.threads as u64;

    let mut rt = JvmRuntime::new(config, program);
    tenants.setup_all(&mut rt);
    on_start(&rt);

    let schedule = ArrivalSchedule::new(cfg.phases.clone(), cfg.process, cfg.seed);
    let phases = schedule.phases().to_vec();
    let primary_slo_ns = cfg.slo_ms.first().map(|ms| (ms * 1e6) as u64).unwrap_or(u64::MAX);

    let mut latency = LatencyRecorder::new(&cfg.slo_ms);
    let mut shifts: Vec<PhaseShiftRecord> = Vec::new();
    let mut digest_changes: Vec<DigestChange> = Vec::new();
    let mut tenant_requests = vec![0u64; tenants.len()];
    let mut requests: u64 = 0;
    let mut cur_phase: usize = 0;
    let mut last_version: u64 = u64::MAX;
    let window = SimTime::from_secs(1);
    let mut next_window = window;

    for arrival in schedule {
        if requests >= cfg.max_requests {
            break;
        }
        if arrival.phase != cur_phase {
            cur_phase = arrival.phase;
            let now = rt.vm.env.clock.now();
            let epochs = rt.vm.env.telemetry.cells().counter(CounterId::EpochsInferred);
            let rate_rps = phases[cur_phase].rate_rps;
            rt.vm.env.trace.emit_global(
                now,
                EventKind::ServePhaseShift {
                    phase: cur_phase as u32,
                    rate_rps,
                    requests_before: requests,
                },
            );
            shifts.push(PhaseShiftRecord {
                at: now,
                phase: cur_phase as u32,
                rate_rps,
                requests_before: requests,
                epochs_at_shift: epochs,
            });
        }

        let thread = ThreadId((requests % threads) as u32);
        let mut ctx = rt.ctx(thread);
        // Open-loop pacing: wait out the gap to the intended start, but
        // never wait for earlier requests — lateness becomes queueing
        // delay charged to this request's corrected latency.
        let now = ctx.env().clock.now();
        if now < arrival.intended {
            ctx.idle(arrival.intended.saturating_sub(now).as_nanos());
        }
        let actual_start = ctx.env().clock.now();
        let snap = BucketSnapshot::capture(ctx.env().telemetry.cells());

        let tenant = tenants.pick(&phases[cur_phase].tenant_weights);
        let done = tenants.tick(tenant, &mut ctx);
        ctx.complete_ops(done);

        let completion = ctx.env().clock.now();
        let decomp = snap.delta(ctx.env().telemetry.cells());

        latency.record(arrival.intended, actual_start, completion, &decomp);
        tenant_requests[tenant] += 1;
        requests += 1;

        let corrected = corrected_latency_ns(arrival.intended, completion);
        let tel = &rt.vm.env.telemetry;
        tel.record(HistId::ServeLatencyNs, corrected);
        tel.record(HistId::ServeQueueNs, queue_delay_ns(arrival.intended, actual_start));
        tel.bump(CounterId::ServeRequests, 1);
        if corrected > primary_slo_ns {
            tel.bump(CounterId::ServeSloMisses, 1);
        }

        // Decision timeline: one atomic load per request.
        if let Some(store) = rt.vm.env.decisions.as_ref() {
            let table = store.load();
            let version = table.version();
            if version != last_version {
                let digest = table.digest();
                let epochs = rt.vm.env.telemetry.cells().counter(CounterId::EpochsInferred);
                // Skip the run's initial empty table (version 0 before
                // the first inference) so the timeline holds real
                // publications only.
                if last_version != u64::MAX || version != 0 {
                    digest_changes.push(DigestChange { at: completion, version, digest, epochs });
                }
                last_version = version;
            }
        }

        let now = rt.vm.env.clock.now();
        if now >= next_window {
            rt.vm.env.throughput.sample_window(now);
            rt.sample_side_tables();
            rt.vm.env.telemetry.registry().publish(now.as_nanos());
            next_window = now + window;
        }
    }

    let profile = rt.profiler.as_ref().map(|p| {
        let p = p.borrow();
        DecisionProfile::from_profiler(&p, &rt.vm.env.program, &rt.vm.env.jit)
    });
    let report = rt.report();
    let elapsed = rt.vm.env.clock.now();
    let metrics = rt.vm.env.telemetry.registry().store().history();
    let pauses = rt.vm.env.pauses.clone();
    ServeOutcome {
        report,
        latency,
        requests,
        shifts,
        digest_changes,
        tenant_names: tenants.names(),
        tenant_requests,
        trace: rt.take_trace(),
        elapsed,
        metrics,
        pauses,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::parse_phases;
    use crate::tenant::default_tenants;

    fn tiny_config(collector: CollectorKind) -> ServeConfig {
        let scale = SimScale::new(2048);
        let mut cfg = ServeConfig::new(collector, scale);
        cfg.phases = parse_phases("2s@400x3/1;2s@400x1/3").expect("phases");
        cfg
    }

    #[test]
    fn serve_decomposition_matches_service_wall_time() {
        let cfg = tiny_config(CollectorKind::RolpNg2c);
        let mut tenants = default_tenants(cfg.scale);
        let out = serve(&cfg, &mut tenants);
        assert!(out.requests > 1_000, "served {} requests", out.requests);
        let wall = out.latency.service_wall_ns() as f64;
        let decomp = out.latency.decomposed_ns() as f64;
        assert!(wall > 0.0);
        let rel = (wall - decomp).abs() / wall;
        assert!(rel < 1e-6, "decomposition off by {rel} (wall {wall}, decomp {decomp})");
        // The schedule routed traffic to both tenants, flipping the mix.
        assert_eq!(out.tenant_requests.len(), 2);
        assert!(out.tenant_requests.iter().all(|&n| n > 0));
        assert_eq!(out.shifts.len(), 1, "one phase shift");
        assert!(out.shifts[0].requests_before > 0);
    }

    #[test]
    fn tlab_refill_stalls_are_charged_to_gc_not_app() {
        // With the allocation fast path on (the default), requests stall
        // on TLAB refills mid-service. Those stalls are GC/runtime
        // overhead, not application work: they must land in the `gc_ns`
        // bucket of the latency decomposition, and the sum-to-wall
        // partition must stay exact with the fast path enabled.
        let cfg = tiny_config(CollectorKind::RolpNg2c);
        assert!(cfg.tlab_bytes > 0, "fast path must default on");
        let out = serve(&cfg, &mut default_tenants(cfg.scale));
        let wall = out.latency.service_wall_ns() as f64;
        let decomp = out.latency.decomposed_ns() as f64;
        let rel = (wall - decomp).abs() / wall;
        assert!(rel < 1e-6, "decomposition off by {rel} with TLABs on");

        let refills =
            out.metrics.last().expect("at least one snapshot").counter(CounterId::TlabRefills);
        assert!(refills > 0, "workload must exercise refills");
        // Every refill charged its stall to the GC side of the split.
        let d = out.latency.decomposed();
        let refill_ns = refills * rolp_vm::CostModel::default().tlab_refill_ns;
        assert!(
            d.gc_ns >= refill_ns,
            "gc bucket ({}) must absorb all refill stalls ({refill_ns})",
            d.gc_ns
        );

        // Reference run: fast path off. The invariant holds either way,
        // and without TLABs no refill is ever charged.
        let mut slow = tiny_config(CollectorKind::RolpNg2c);
        slow.tlab_bytes = 0;
        let out = serve(&slow, &mut default_tenants(slow.scale));
        let wall = out.latency.service_wall_ns() as f64;
        let decomp = out.latency.decomposed_ns() as f64;
        assert!((wall - decomp).abs() / wall < 1e-6, "invariant holds without TLABs");
        let refills = out.metrics.last().expect("snapshot").counter(CounterId::TlabRefills);
        assert_eq!(refills, 0, "no fast path, no refills");
    }

    #[test]
    fn serve_is_deterministic() {
        let cfg = tiny_config(CollectorKind::G1);
        let a = serve(&cfg, &mut default_tenants(cfg.scale));
        let b = serve(&cfg, &mut default_tenants(cfg.scale));
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.latency.corrected().percentile(99.0), b.latency.corrected().percentile(99.0));
        assert_eq!(a.elapsed, b.elapsed);
    }

    #[test]
    fn rolp_run_keeps_a_decision_timeline_and_g1_does_not() {
        let mut cfg = tiny_config(CollectorKind::RolpNg2c);
        // Enough traffic for several inference epochs: ~300 requests per
        // GC cycle at this scale, inference every 2 cycles.
        cfg.phases = parse_phases("4s@1500x3/1;4s@1500x1/3").expect("phases");
        cfg.inference_period = Some(2);
        let out = serve(&cfg, &mut default_tenants(cfg.scale));
        assert!(!out.digest_changes.is_empty(), "ROLP published decisions");
        let conv = out.reconvergence();
        assert_eq!(conv.len(), out.shifts.len());
        let g1 = serve(&tiny_config(CollectorKind::G1), &mut default_tenants(cfg.scale));
        assert!(g1.digest_changes.is_empty(), "G1 has no decision store");
        assert_eq!(g1.stable_tail(), g1.elapsed);
    }
}
