//! Text indexing: package filters focusing the profiler.
//!
//! ```sh
//! cargo run --release --example text_index
//! ```
//!
//! Runs the Lucene-like indexing workload under ROLP twice: once profiling
//! every package and once with the paper's `lucene.store` filter (§7.3).
//! The filter bounds the profiling overhead on a large code base while
//! keeping the sites that matter — the segment posting buffers whose
//! middle lifetimes cause the copying problem.

use rolp::runtime::{CollectorKind, RuntimeConfig};
use rolp::PackageFilters;
use rolp_heap::HeapConfig;
use rolp_metrics::table::TextTable;
use rolp_metrics::SimTime;
use rolp_workloads::{execute, LuceneParams, LuceneWorkload, RunBudget};

fn main() {
    let heap = HeapConfig { region_bytes: 64 * 1024, max_heap_bytes: 96 << 20 };
    let budget = RunBudget {
        sim_time: SimTime::from_secs(360),
        warmup_discard: SimTime::from_secs(150),
        max_ops: u64::MAX,
    };
    let params =
        LuceneParams { segment_flush_docs: 70_000, vocabulary: 20_000, ..Default::default() };

    println!("Lucene-like indexer, 80% writes over a synthetic corpus\n");
    let mut table = TextTable::new(vec![
        "filter",
        "p99 ms",
        "profiled allocs",
        "unprofiled allocs",
        "decisions",
        "OLD table",
    ]);
    for (label, filters) in [
        // `include("lucene")` covers every package of the program — the
        // unfiltered case (an explicitly empty filter would be replaced by
        // the workload's paper default).
        ("(profile everything)", PackageFilters::include(&["lucene"])),
        ("lucene.store only", PackageFilters::include(&["lucene.store"])),
    ] {
        let mut w = LuceneWorkload::new(params.clone());
        let mut config = RuntimeConfig {
            collector: CollectorKind::RolpNg2c,
            heap: heap.clone(),
            cost: rolp_vm::CostModel::scaled(rolp_metrics::SimScale::new(64)),
            side_table_scale: 64,
            ..Default::default()
        };
        config.rolp.filters = filters;
        let out = execute(&mut w, config, &budget);
        let r = out.report.rolp.expect("rolp stats");
        table.row(vec![
            label.to_string(),
            format!("{:.1}", out.pauses.percentile_ms(99.0)),
            r.profiled_allocations.to_string(),
            r.unprofiled_allocations.to_string(),
            r.decisions.to_string(),
            rolp_metrics::table::fmt_bytes(r.old_table_bytes),
        ]);
    }
    println!("{}", table.render());
    println!(
        "reading guide: the filter removes the analysis/search churn from the\n\
         profiler's view (fewer profiled allocations, less overhead) while the\n\
         posting-buffer decisions that fix the pause times remain."
    );
}
