//! Key-value store tail latency: the paper's headline scenario end to end.
//!
//! ```sh
//! cargo run --release --example kv_store_latency
//! ```
//!
//! Runs the Cassandra-like workload (write-intensive YCSB mix) under all
//! five runtime configurations the paper evaluates and prints the GC pause
//! percentiles side by side — a miniature of Figs. 8 and 9.

use rolp::runtime::CollectorKind;
use rolp_heap::HeapConfig;
use rolp_metrics::table::TextTable;
use rolp_metrics::SimTime;
use rolp_workloads::{execute, CassandraMix, CassandraParams, CassandraWorkload, RunBudget};

fn main() {
    let heap = HeapConfig { region_bytes: 64 * 1024, max_heap_bytes: 96 << 20 };
    // Long enough that ROLP's learning phase (a few 16-cycle inference
    // windows plus conflict resolution) is fully covered by the discard,
    // as the paper's 5-of-30-minute discard covers its ~350 s warmup.
    let budget = RunBudget {
        sim_time: SimTime::from_secs(360),
        warmup_discard: SimTime::from_secs(150),
        max_ops: u64::MAX,
    };
    let params = CassandraParams {
        mix: CassandraMix::WriteIntensive,
        memtable_flush_entries: 40_000,
        key_space: 150_000,
        row_cache_entries: 20_000,
        ..Default::default()
    };

    println!(
        "Cassandra-like KV store, YCSB write-intensive mix, 96 MiB heap, {} run\n",
        budget.sim_time
    );

    let mut table = TextTable::new(vec![
        "system", "p50 ms", "p90 ms", "p99 ms", "p99.9 ms", "max ms", "pauses", "ops/s",
    ]);
    for kind in CollectorKind::all() {
        let mut w = CassandraWorkload::new(params.clone());
        let config = rolp::runtime::RuntimeConfig {
            collector: kind,
            heap: heap.clone(),
            // 96 MiB is 1/64 of the paper's 6 GB heap; scale the copy
            // bandwidth with it so pause magnitudes stay paper-like.
            cost: rolp_vm::CostModel::scaled(rolp_metrics::SimScale::new(64)),
            side_table_scale: 64,
            ..Default::default()
        };
        let out = execute(&mut w, config, &budget);
        if kind == CollectorKind::Zgc {
            // The paper omits ZGC pauses from its plots (always <10 ms);
            // keep the row but note the trade.
            println!(
                "note: ZGC pauses are all handshakes (max {:.1} ms) — its cost is \
                 throughput/memory, not latency",
                out.pauses.percentile_ms(100.0)
            );
        }
        table.row(vec![
            kind.label().to_string(),
            format!("{:.1}", out.pauses.percentile_ms(50.0)),
            format!("{:.1}", out.pauses.percentile_ms(90.0)),
            format!("{:.1}", out.pauses.percentile_ms(99.0)),
            format!("{:.1}", out.pauses.percentile_ms(99.9)),
            format!("{:.1}", out.pauses.percentile_ms(100.0)),
            out.pauses.count().to_string(),
            format!("{:.0}", out.report.ops_per_sec),
        ]);
    }
    println!("\n{}", table.render());
    println!(
        "reading guide: CMS/G1 copy the memtable through the young generation\n\
         over and over; NG2C avoids it with hand annotations; ROLP matches NG2C\n\
         with no programmer input — the paper's core claim."
    );
}
