//! Quickstart: assemble the ROLP runtime, run a tiny guest program, and
//! watch the profiler learn object lifetimes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The guest program allocates two kinds of objects through hot code: a
//! short-lived "request" that dies immediately, and a "session" that lives
//! for many GC cycles. After a warmup, ROLP's Object Lifetime Distribution
//! table has learned both lifetimes, and the collector pretenures the
//! sessions into a dynamic generation — no annotations, no source hints.

use std::collections::VecDeque;

use rolp::runtime::{CollectorKind, JvmRuntime, RuntimeConfig};
use rolp_heap::HeapConfig;
use rolp_vm::{ProgramBuilder, ThreadId};

fn main() {
    // 1. Declare the guest program: methods, call sites, allocation sites.
    let mut b = ProgramBuilder::new();
    let main = b.method("app.Server::main", 60, false);
    let handle = b.method("app.Server::handleRequest", 200, false);
    let cs_handle = b.call_site(main, handle);
    let site_request = b.alloc_site(handle, 3);
    let site_session = b.alloc_site(handle, 9);
    let program = b.build();

    // 2. Assemble the runtime: ROLP profiler + NG2C pretenuring collector.
    let config = RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: HeapConfig { region_bytes: 64 * 1024, max_heap_bytes: 32 << 20 },
        ..Default::default()
    };
    let mut rt = JvmRuntime::new(config, program);
    let req_class = rt.vm.env.heap.classes.register("app.Request");
    let session_class = rt.vm.env.heap.classes.register("app.Session");

    // 3. Run guest code: requests die instantly, sessions live ~30k ops.
    let mut sessions = VecDeque::new();
    for i in 0u64..400_000 {
        let mut ctx = rt.ctx(ThreadId(0));
        ctx.call(cs_handle, |ctx| {
            ctx.work(50);
            let request = ctx.alloc(site_request, req_class, 0, 12);
            ctx.set_data(request, 0, i);
            ctx.release(request); // dies young

            let session = ctx.alloc(site_session, session_class, 0, 24);
            sessions.push_back(session);
        });
        if sessions.len() > 30_000 {
            let old = sessions.pop_front().expect("non-empty");
            rt.ctx(ThreadId(0)).release(old); // dies middle-aged
        }
        ctx = rt.ctx(ThreadId(0));
        ctx.complete_ops(1);
    }

    // 4. Inspect what ROLP learned.
    let report = rt.report();
    println!("collector:        {}", report.collector);
    println!("guest ops:        {}", report.ops);
    println!("GC cycles:        {}", report.gc_cycles);
    println!("pauses:           {}", report.pauses);
    println!("simulated time:   {}", report.elapsed);
    println!("time paused:      {}", report.total_paused);
    let rolp = report.rolp.expect("ROLP was configured");
    println!("profiled allocs:  {}", rolp.profiled_allocations);
    println!("inference passes: {}", rolp.inferences);
    println!("decisions:        {}", rolp.decisions);

    let profiler = rt.profiler.as_ref().expect("ROLP present").borrow();
    println!();
    println!("{}", rolp::render_summary(&profiler, &rt.vm.env.program, &rt.vm.env.jit));
    println!("{}", rolp::render_decisions(&profiler, &rt.vm.env.program));
    println!(
        "expected: the request site maps to the young generation (dies young) and\n\
         the session site to a middle generation — learned purely at runtime."
    );
}
