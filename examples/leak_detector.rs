//! Memory-leak detection from lifetime statistics (paper §2.2).
//!
//! ```sh
//! cargo run --release --example leak_detector
//! ```
//!
//! The paper notes that ROLP's per-allocation-context statistics enable
//! leak detection "by reporting object lifetime statistics per allocation
//! context". This example plants a classic leak — a registry that is only
//! ever appended to — next to healthy allocation sites, runs the profiler,
//! and prints the leak report: the leaking context is the one whose
//! objects pile up at the maximum age while fresh allocations keep coming.

use rolp::runtime::{CollectorKind, JvmRuntime, RuntimeConfig};
use rolp::LeakReport;
use rolp_heap::HeapConfig;
use rolp_vm::{ProgramBuilder, ThreadId};

fn main() {
    let mut b = ProgramBuilder::new();
    let main = b.method("app.Main::run", 60, false);
    let serve = b.method("app.Api::serve", 220, false);
    let audit = b.method("app.audit.Log::append", 90, false);
    let cs_serve = b.call_site(main, serve);
    let cs_audit = b.call_site(serve, audit);
    let site_tmp = b.alloc_site(serve, 4); // healthy: dies young
    let site_leak = b.alloc_site(audit, 8); // the leak: never released
    let program = b.build();

    let mut config = RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: HeapConfig { region_bytes: 64 * 1024, max_heap_bytes: 48 << 20 },
        ..Default::default()
    };
    // Mark early and often so the liveness census (the leak signal) has
    // several data points within this short run.
    config.regional.mark_trigger = 0.15;
    let mut rt = JvmRuntime::new(config, program);
    let tmp_class = rt.vm.env.heap.classes.register("app.Scratch");
    let leak_class = rt.vm.env.heap.classes.register("app.audit.Entry");

    let mut leaked = Vec::new();
    for i in 0u64..600_000 {
        let mut ctx = rt.ctx(ThreadId(0));
        ctx.call(cs_serve, |ctx| {
            ctx.work(80);
            let tmp = ctx.alloc(site_tmp, tmp_class, 0, 48);
            ctx.release(tmp);
            // The bug: every 4th request appends an audit entry that is
            // never trimmed.
            if i % 4 == 0 {
                let entry = ctx.call(cs_audit, |ctx| {
                    ctx.work(20);
                    ctx.alloc(site_leak, leak_class, 0, 10)
                });
                leaked.push(entry);
            }
        });
    }

    let profiler = rt.profiler.as_ref().expect("ROLP present").borrow();
    let report = LeakReport::gather(&profiler, &rt.vm.env.program, &rt.vm.env.jit, 1_000);
    println!("{}", report.render());
    println!("live leaked objects actually held: {}", leaked.len());
    assert!(
        report.suspects.iter().any(|s| s.location.contains("app.audit.Log::append")),
        "the planted leak must be flagged"
    );
    println!("the planted leak (app.audit.Log::append @bci 8) was flagged correctly.");
}
