//! Graph analytics: epochal memory behaviour on an out-of-core engine.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```
//!
//! Runs Connected Components and PageRank on the GraphChi-like engine over
//! a synthetic power-law graph, comparing G1 with ROLP. Each processing
//! interval loads a shard's edge blocks (tens of MB), works on them, and
//! drops them — the textbook middle-lived/epochal pattern that generational
//! collectors copy to death and ROLP learns to pretenure.

use rolp::runtime::{CollectorKind, RuntimeConfig};
use rolp_heap::HeapConfig;
use rolp_metrics::table::TextTable;
use rolp_metrics::SimTime;
use rolp_workloads::{execute, GraphAlgo, GraphChiParams, GraphChiWorkload, RunBudget};

fn main() {
    let heap = HeapConfig { region_bytes: 64 * 1024, max_heap_bytes: 96 << 20 };
    let budget = RunBudget {
        sim_time: SimTime::from_secs(200),
        warmup_discard: SimTime::from_secs(50),
        max_ops: u64::MAX,
    };

    println!("GraphChi-like engine, synthetic power-law graph (650k vertices, 23M edges)\n");
    let mut table =
        TextTable::new(vec!["algo", "system", "intervals", "p50 ms", "p99 ms", "max ms"]);

    for algo in [GraphAlgo::ConnectedComponents, GraphAlgo::PageRank] {
        for kind in [CollectorKind::G1, CollectorKind::RolpNg2c] {
            let mut w = GraphChiWorkload::new(GraphChiParams {
                algo,
                vertices: 650_000,
                edges: 23_000_000,
                shards: 16,
                chunk: 4_096,
                io_ns_per_edge: 800,
                update_sample: 64,
                seed: 0x6AF,
            });
            let config = RuntimeConfig {
                collector: kind,
                heap: heap.clone(),
                cost: rolp_vm::CostModel::scaled(rolp_metrics::SimScale::new(64)),
                side_table_scale: 64,
                ..Default::default()
            };
            let out = execute(&mut w, config, &budget);
            table.row(vec![
                algo.label().to_string(),
                kind.label().to_string(),
                w.intervals.to_string(),
                format!("{:.1}", out.pauses.percentile_ms(50.0)),
                format!("{:.1}", out.pauses.percentile_ms(99.0)),
                format!("{:.1}", out.pauses.percentile_ms(100.0)),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "note: under G1 every interval's edge blocks are copied out of eden\n\
         before they die; under ROLP they are pretenured into a dynamic\n\
         generation and the whole region is reclaimed for free at interval\n\
         end (paper Section 8.4 — GraphChi shows the largest reductions)."
    );
}
