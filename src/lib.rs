//! Umbrella crate for the ROLP reproduction.
//!
//! Re-exports the public API of every workspace crate so examples and
//! integration tests can depend on a single package. See the `rolp` crate
//! for the paper's contribution and `README.md` for an overview.

pub use rolp as core;
pub use rolp_gc as gc;
pub use rolp_heap as heap;
pub use rolp_metrics as metrics;
pub use rolp_vm as vm;
pub use rolp_workloads as workloads;
