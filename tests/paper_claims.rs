//! Executable summary of the paper's headline claims, at test scale.
//!
//! Each test states one claim from the abstract/conclusions and asserts
//! the mechanism behind it end to end. The full-scale numbers live in
//! `EXPERIMENTS.md`; these are the fast, always-on guards.

use rolp::runtime::{CollectorKind, RuntimeConfig};
use rolp_heap::HeapConfig;
use rolp_metrics::{SimScale, SimTime};
use rolp_vm::CostModel;
use rolp_workloads::{
    execute, CassandraMix, CassandraParams, CassandraWorkload, RunBudget, Workload,
};

fn workload() -> CassandraWorkload {
    CassandraWorkload::new(CassandraParams {
        mix: CassandraMix::WriteIntensive,
        memtable_flush_entries: 2_000,
        key_space: 20_000,
        row_cache_entries: 1_000,
        op_pacing_ns: 2_000,
        ..Default::default()
    })
}

fn config(kind: CollectorKind) -> RuntimeConfig {
    RuntimeConfig {
        collector: kind,
        heap: HeapConfig { region_bytes: 64 * 1024, max_heap_bytes: 24 << 20 },
        cost: CostModel::scaled(SimScale::new(256)),
        side_table_scale: 256,
        threads: 2,
        ..Default::default()
    }
}

fn steady_budget() -> RunBudget {
    RunBudget {
        sim_time: SimTime::from_secs(4),
        warmup_discard: SimTime::from_secs(2),
        max_ops: u64::MAX,
    }
}

/// "Results show long tail latencies reductions ... with no programmer
/// effort": ROLP's tail must sit well below G1's and near NG2C's, and the
/// ROLP run uses zero annotations while the NG2C run needs them.
#[test]
fn claim_tail_reduction_without_programmer_effort() {
    let run = |kind| {
        let mut w = workload();
        let out = execute(&mut w, config(kind), &steady_budget());
        (out.pauses.percentile_ms(99.0), w.annotation_count())
    };
    let (g1, _) = run(CollectorKind::G1);
    let (ng2c, annotations) = run(CollectorKind::Ng2c);
    let (rolp, _) = run(CollectorKind::RolpNg2c);

    assert!(rolp < g1 * 0.7, "ROLP p99 {rolp:.1} ms vs G1 {g1:.1} ms");
    assert!(rolp < ng2c * 1.5, "ROLP p99 {rolp:.1} ms must be in NG2C's league ({ng2c:.1} ms)");
    assert!(annotations > 0, "the NG2C baseline needs hand annotations; ROLP needs none");
}

/// "...negligible throughput (< 6%) overhead": the profiling instructions
/// must not cost more than a few percent of saturated capacity vs the
/// same collector without any profiling (NG2C with annotations).
#[test]
fn claim_negligible_throughput_overhead() {
    let capacity = |kind| {
        let mut w = workload();
        execute(&mut w, config(kind), &steady_budget()).report.ops_per_busy_sec
    };
    let ng2c = capacity(CollectorKind::Ng2c);
    let rolp = capacity(CollectorKind::RolpNg2c);
    let overhead = 1.0 - rolp / ng2c;
    assert!(
        overhead < 0.10,
        "profiling overhead vs annotation-driven NG2C: {:.1}% (paper: <6%)",
        overhead * 100.0
    );
}

/// "...and memory overhead": the OLD table is bounded by
/// 4 MB x (1 + conflicts) and peak heap stays close to NG2C's.
#[test]
fn claim_negligible_memory_overhead() {
    let mut w = workload();
    let out = execute(&mut w, config(CollectorKind::RolpNg2c), &steady_budget());
    let rolp = out.report.rolp.expect("rolp stats");
    let bound = 4 * 1024 * 1024 * (1 + rolp.conflicts.detected);
    assert!(
        rolp.old_table_bytes <= bound,
        "OLD table {} exceeds the Section 7.5 bound {}",
        rolp.old_table_bytes,
        bound
    );
}

/// "ROLP is the first ... that can categorize objects in multiple classes
/// of estimated lifetime": the decisions must span at least three distinct
/// generations (young, a middle dynamic generation, old-ish), not a binary
/// tenured/untenured split.
#[test]
fn claim_multiple_lifetime_classes() {
    // Separate the middle-lived cohorts clearly: the memtable epoch lives
    // ~4-5 GC cycles, the FIFO row cache ~3-4x longer.
    let mut w = CassandraWorkload::new(CassandraParams {
        mix: CassandraMix::WriteIntensive,
        memtable_flush_entries: 3_000,
        key_space: 20_000,
        row_cache_entries: 12_000,
        op_pacing_ns: 2_000,
        ..Default::default()
    });
    let program = w.build_program();
    let mut rt = rolp::runtime::JvmRuntime::new(config(CollectorKind::RolpNg2c), program);
    w.setup(&mut rt);
    for i in 0..400_000u64 {
        let mut ctx = rt.ctx(rolp_vm::ThreadId((i % 2) as u32));
        w.tick(&mut ctx);
    }
    let profiler = rt.profiler.as_ref().expect("rolp").borrow();
    let mut gens: Vec<u8> = profiler.decisions().values().copied().collect();
    gens.sort_unstable();
    gens.dedup();
    assert!(
        gens.len() >= 3,
        "expected >= 3 distinct lifetime classes, got {gens:?}; decisions {:?}; stats {:?}",
        profiler.decisions(),
        profiler.stats(&rt.vm.env.program, &rt.vm.env.jit).conflicts,
    );
}
