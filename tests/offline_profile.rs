//! End-to-end test of the POLM2-style offline warm start: export decisions
//! from one run, import them into a fresh run, and verify the warmup
//! disappears (the Fig. 10 learning phase is skipped).

use rolp::runtime::{CollectorKind, JvmRuntime, RuntimeConfig};
use rolp::DecisionProfile;
use rolp_heap::{HeapConfig, RegionKind};
use rolp_vm::{ProgramBuilder, ThreadId};

/// A program with one hot method allocating middle-lived objects.
fn program() -> (rolp_vm::Program, rolp_vm::CallSiteId, rolp_vm::AllocSiteId) {
    let mut b = ProgramBuilder::new();
    let main = b.method("app.Main::run", 60, false);
    let hot = b.method("app.store.Buffer::fill", 120, false);
    let cs = b.call_site(main, hot);
    let site = b.alloc_site(hot, 5);
    (b.build(), cs, site)
}

fn run(
    profile: Option<DecisionProfile>,
    ops: u64,
) -> (JvmRuntime, rolp_vm::CallSiteId, rolp_vm::AllocSiteId) {
    let (program, cs, site) = program();
    let mut config = RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: HeapConfig { region_bytes: 64 * 1024, max_heap_bytes: 12 << 20 },
        ..Default::default()
    };
    config.rolp.offline_profile = profile;
    let mut rt = JvmRuntime::new(config, program);
    let class = rt.vm.env.heap.classes.register("app.store.Chunk");

    // Middle-lived ring: objects live ~20k ops.
    let mut ring = std::collections::VecDeque::new();
    for _ in 0..ops {
        let mut ctx = rt.ctx(ThreadId(0));
        let h = ctx.call(cs, |ctx| {
            ctx.work(20);
            ctx.alloc(site, class, 0, 24)
        });
        ring.push_back(h);
        if ring.len() > 10_000 {
            let old = ring.pop_front().expect("non-empty");
            rt.ctx(ThreadId(0)).release(old);
        }
    }
    (rt, cs, site)
}

#[test]
fn exported_profile_warm_starts_a_fresh_run() {
    // Run 1: learn online, then export.
    let (mut rt1, _, _) = run(None, 600_000);
    let report1 = rt1.report();
    let rolp1 = report1.rolp.expect("rolp stats");
    assert!(rolp1.decisions > 0, "first run must learn something");
    let profile = {
        let p = rt1.profiler.as_ref().expect("rolp").borrow();
        DecisionProfile::from_profiler(&p, &rt1.vm.env.program, &rt1.vm.env.jit)
    };
    assert!(!profile.is_empty(), "exported profile has entries");
    assert!(profile.to_string().contains("app.store.Buffer::fill@5"));

    // The profile round-trips through its text form (what a file would
    // hold).
    let text = profile.to_string();
    let parsed: DecisionProfile = text.parse().expect("parses");
    assert_eq!(parsed, profile);

    // Run 2: import; pretenuring must begin as soon as the hot method
    // compiles — long before any inference pass could have run.
    let (rt2, _, _) = run(Some(parsed), 3_000);
    let used_dynamic: usize =
        (1u8..=14).map(|g| rt2.vm.env.heap.num_of_kind(RegionKind::Dynamic(g))).sum();
    assert!(used_dynamic > 0, "offline-seeded decisions must pretenure before the first inference");
    let rolp2 = {
        let p = rt2.profiler.as_ref().expect("rolp").borrow();
        p.stats(&rt2.vm.env.program, &rt2.vm.env.jit)
    };
    assert_eq!(rolp2.inferences, 0, "3k ops is before the first inference window");
}

#[test]
fn stale_profile_entries_are_ignored() {
    let profile: DecisionProfile =
        "zzz.Gone::method@9 7\napp.store.Buffer::fill@5 6\n".parse().expect("parses");
    let (rt, _, _) = run(Some(profile), 3_000);
    // The matching entry applied; the stale one was dropped silently.
    let used_dynamic: usize =
        (1u8..=14).map(|g| rt.vm.env.heap.num_of_kind(RegionKind::Dynamic(g))).sum();
    assert!(used_dynamic > 0);
}
