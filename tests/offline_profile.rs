//! End-to-end test of the POLM2-style offline warm start: export decisions
//! from one run, import them into a fresh run, and verify the warmup
//! disappears (the Fig. 10 learning phase is skipped).

use rolp::runtime::{CollectorKind, JvmRuntime, RuntimeConfig};
use rolp::DecisionProfile;
use rolp_heap::{HeapConfig, RegionKind};
use rolp_vm::{ProgramBuilder, ThreadId};

/// A program with one hot method allocating middle-lived objects.
fn program() -> (rolp_vm::Program, rolp_vm::CallSiteId, rolp_vm::AllocSiteId) {
    let mut b = ProgramBuilder::new();
    let main = b.method("app.Main::run", 60, false);
    let hot = b.method("app.store.Buffer::fill", 120, false);
    let cs = b.call_site(main, hot);
    let site = b.alloc_site(hot, 5);
    (b.build(), cs, site)
}

fn run(
    profile: Option<DecisionProfile>,
    ops: u64,
) -> (JvmRuntime, rolp_vm::CallSiteId, rolp_vm::AllocSiteId) {
    let (program, cs, site) = program();
    let mut config = RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: HeapConfig { region_bytes: 64 * 1024, max_heap_bytes: 12 << 20 },
        ..Default::default()
    };
    config.rolp.offline_profile = profile;
    let mut rt = JvmRuntime::new(config, program);
    let class = rt.vm.env.heap.classes.register("app.store.Chunk");

    // Middle-lived ring: objects live ~20k ops.
    let mut ring = std::collections::VecDeque::new();
    for _ in 0..ops {
        let mut ctx = rt.ctx(ThreadId(0));
        let h = ctx.call(cs, |ctx| {
            ctx.work(20);
            ctx.alloc(site, class, 0, 24)
        });
        ring.push_back(h);
        if ring.len() > 10_000 {
            let old = ring.pop_front().expect("non-empty");
            rt.ctx(ThreadId(0)).release(old);
        }
    }
    (rt, cs, site)
}

#[test]
fn exported_profile_warm_starts_a_fresh_run() {
    // Run 1: learn online, then export.
    let (mut rt1, _, _) = run(None, 600_000);
    let report1 = rt1.report();
    let rolp1 = report1.rolp.expect("rolp stats");
    assert!(rolp1.decisions > 0, "first run must learn something");
    let profile = {
        let p = rt1.profiler.as_ref().expect("rolp").borrow();
        DecisionProfile::from_profiler(&p, &rt1.vm.env.program, &rt1.vm.env.jit)
    };
    assert!(!profile.is_empty(), "exported profile has entries");
    assert!(profile.to_string().contains("app.store.Buffer::fill@5"));

    // The profile round-trips through its text form (what a file would
    // hold).
    let text = profile.to_string();
    let parsed: DecisionProfile = text.parse().expect("parses");
    assert_eq!(parsed, profile);

    // Run 2: import; pretenuring must begin as soon as the hot method
    // compiles — long before any inference pass could have run.
    let (rt2, _, _) = run(Some(parsed), 3_000);
    let used_dynamic: usize =
        (1u8..=14).map(|g| rt2.vm.env.heap.num_of_kind(RegionKind::Dynamic(g))).sum();
    assert!(used_dynamic > 0, "offline-seeded decisions must pretenure before the first inference");
    let rolp2 = {
        let p = rt2.profiler.as_ref().expect("rolp").borrow();
        p.stats(&rt2.vm.env.program, &rt2.vm.env.jit)
    };
    assert_eq!(rolp2.inferences, 0, "3k ops is before the first inference window");
}

/// Two-site program for the traffic-drift scenario: both sites sit in
/// the same hot method, but their object lifetimes are driven
/// independently by the caller.
fn two_site_program(
) -> (rolp_vm::Program, rolp_vm::CallSiteId, rolp_vm::AllocSiteId, rolp_vm::AllocSiteId) {
    let mut b = ProgramBuilder::new();
    let main = b.method("app.Main::run", 60, false);
    let hot = b.method("app.store.Buffer::fill", 120, false);
    let cs = b.call_site(main, hot);
    let site_a = b.alloc_site(hot, 5);
    let site_b = b.alloc_site(hot, 9);
    (b.build(), cs, site_a, site_b)
}

/// Drives the two-site workload. Site A keeps a middle-lived ring of
/// objects throughout. Site B holds a ring during the learning phase;
/// with `drift`, B's objects instead die immediately — the traffic
/// pattern the profile was learned on is gone. `frozen_replay` disables
/// the confidence blend: the imported profile is trusted verbatim
/// forever (plain POLM2 replay, the comparison baseline).
fn run_two_site(
    profile: Option<DecisionProfile>,
    drift: bool,
    frozen_replay: bool,
    ops: u64,
) -> (JvmRuntime, rolp::RolpStats) {
    let (program, cs, site_a, site_b) = two_site_program();
    let mut config = RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: HeapConfig { region_bytes: 64 * 1024, max_heap_bytes: 16 << 20 },
        ..Default::default()
    };
    config.rolp.offline_profile = profile;
    config.rolp.blend = !frozen_replay;
    let mut rt = JvmRuntime::new(config, program);
    let class = rt.vm.env.heap.classes.register("app.store.Chunk");

    let mut ring_a = std::collections::VecDeque::new();
    let mut ring_b = std::collections::VecDeque::new();
    for _ in 0..ops {
        let mut ctx = rt.ctx(ThreadId(0));
        let (ha, hb) = ctx.call(cs, |ctx| {
            ctx.work(20);
            (ctx.alloc(site_a, class, 0, 24), ctx.alloc(site_b, class, 0, 6))
        });
        ring_a.push_back(ha);
        if ring_a.len() > 12_000 {
            let old = ring_a.pop_front().expect("non-empty");
            rt.ctx(ThreadId(0)).release(old);
        }
        if drift {
            // Drifted traffic: B's objects now die young.
            rt.ctx(ThreadId(0)).release(hb);
        } else {
            ring_b.push_back(hb);
            if ring_b.len() > 20_000 {
                let old = ring_b.pop_front().expect("non-empty");
                rt.ctx(ThreadId(0)).release(old);
            }
        }
    }
    let stats = {
        let p = rt.profiler.as_ref().expect("rolp").borrow();
        p.stats(&rt.vm.env.program, &rt.vm.env.jit)
    };
    (rt, stats)
}

/// The ISSUE's drift case: a profile learned under one traffic pattern
/// is imported into a run whose traffic has drifted. The
/// confidence-weighted blend must (a) still beat a cold start — the
/// still-valid entry pretenures from epoch 0 — and (b) beat a frozen
/// replay of the profile, which keeps promoting the drifted site's
/// now-short-lived objects into an old generation forever.
#[test]
fn blended_warm_start_beats_cold_and_frozen_replay_under_drift() {
    // Learn both sites middle-lived.
    let (rt1, learn_stats) = run_two_site(None, false, false, 700_000);
    assert!(learn_stats.inferences > 0, "learning run must reach inference");
    let profile = {
        let p = rt1.profiler.as_ref().expect("rolp").borrow();
        DecisionProfile::from_profiler(&p, &rt1.vm.env.program, &rt1.vm.env.jit)
    };
    assert!(profile.len() >= 2, "both sites must be learned, got: {profile}");

    const OPS: u64 = 700_000;
    let (cold_rt, cold) = run_two_site(None, true, false, OPS);
    let (blend_rt, blend) = run_two_site(Some(profile.clone()), true, false, OPS);
    let (frozen_rt, frozen) = run_two_site(Some(profile), true, true, OPS);
    let _ = cold;

    let paused = |rt: &JvmRuntime| rt.vm.env.pauses.clone();
    let (cold_p, blend_p, frozen_p) = (paused(&cold_rt), paused(&blend_rt), paused(&frozen_rt));

    // The blend released the drifted entry and kept the valid one.
    assert!(blend.profile_rows_released >= 1, "drifted entry must be released: {blend:?}");
    assert!(blend.profile_rows_active >= 1, "valid entry must survive: {blend:?}");
    assert!(blend.profile_blend_decays >= 2, "release takes repeated decay epochs: {blend:?}");

    // Frozen replay never lets go of anything.
    assert_eq!(frozen.profile_rows_released, 0, "frozen replay must not release: {frozen:?}");
    assert_eq!(frozen.profile_blend_decays, 0, "frozen replay must not decay: {frozen:?}");

    // Beats cold start: the still-valid entry pretenures from the first
    // compile, so the warm run stops paying young-collection copying for
    // site A's ring during the cold run's learning window.
    assert!(
        blend_p.total() < cold_p.total(),
        "blended warm start must pause less than cold start: {:?} vs {:?}",
        blend_p.total(),
        cold_p.total(),
    );

    // Beats frozen replay: the frozen run keeps pretenuring site B's
    // now-young garbage into an old generation, paying mixed-collection
    // work the blended run sheds once the entry is released.
    assert!(
        blend_p.total() < frozen_p.total(),
        "blended warm start must pause less than frozen replay: {:?} vs {:?}",
        blend_p.total(),
        frozen_p.total(),
    );
}

#[test]
fn stale_profile_entries_are_ignored() {
    let profile: DecisionProfile =
        "zzz.Gone::method@9 7\napp.store.Buffer::fill@5 6\n".parse().expect("parses");
    let (rt, _, _) = run(Some(profile), 3_000);
    // The matching entry applied; the stale one was dropped silently.
    let used_dynamic: usize =
        (1u8..=14).map(|g| rt.vm.env.heap.num_of_kind(RegionKind::Dynamic(g))).sum();
    assert!(used_dynamic > 0);
}
