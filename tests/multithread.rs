//! Multi-thread (guest) execution: the driver rotates guest threads and
//! each carries its own thread stack state; profiling and collection must
//! behave with several mutators in flight.

use rolp::runtime::{CollectorKind, RuntimeConfig};
use rolp_heap::HeapConfig;
use rolp_workloads::{execute, CassandraMix, CassandraParams, CassandraWorkload, RunBudget};

fn config(threads: u32) -> RuntimeConfig {
    RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: HeapConfig { region_bytes: 64 * 1024, max_heap_bytes: 24 << 20 },
        threads,
        ..Default::default()
    }
}

fn workload() -> CassandraWorkload {
    CassandraWorkload::new(CassandraParams {
        mix: CassandraMix::WriteIntensive,
        memtable_flush_entries: 1_500,
        key_space: 10_000,
        row_cache_entries: 800,
        op_pacing_ns: 1_000,
        ..Default::default()
    })
}

#[test]
fn four_guest_threads_profile_and_pretenure() {
    let mut w = workload();
    let out = execute(&mut w, config(4), &RunBudget::smoke(60_000));
    assert_eq!(out.report.ops, 60_000);
    let rolp = out.report.rolp.expect("rolp stats");
    assert!(rolp.inferences >= 1);
    assert!(rolp.decisions >= 1, "{rolp:?}");
}

#[test]
fn thread_count_does_not_change_profiling_decisions() {
    // The OLD table aggregates across threads; the same workload on 1 and
    // 4 threads must converge to the same decision *set* (contexts and
    // generations may differ by at most the per-thread interleaving of
    // flush boundaries, so compare counts loosely).
    let decisions = |threads| {
        let mut w = workload();
        let out = execute(&mut w, config(threads), &RunBudget::smoke(80_000));
        out.report.rolp.expect("rolp").decisions
    };
    let d1 = decisions(1);
    let d4 = decisions(4);
    assert!(d1 > 0 && d4 > 0);
    assert!(
        d1.abs_diff(d4) <= 2,
        "decision counts should be similar across thread counts: {d1} vs {d4}"
    );
}

#[test]
fn tss_reconciliation_covers_all_threads() {
    // Force a corruption on every thread, then run until a GC happens:
    // the end-of-cycle reconciliation must repair all of them.
    let mut w = workload();
    let program = {
        use rolp_workloads::Workload;
        w.build_program()
    };
    let mut rt = rolp::runtime::JvmRuntime::new(config(4), program);
    {
        use rolp_workloads::Workload;
        w.setup(&mut rt);
    }
    for t in &mut rt.vm.env.threads {
        t.tss = 0xBEEF;
    }
    {
        use rolp_workloads::Workload;
        for i in 0..30_000u64 {
            let mut ctx = rt.ctx(rolp_vm::ThreadId((i % 4) as u32));
            w.tick(&mut ctx);
        }
    }
    let report = rt.report();
    assert!(report.gc_cycles > 0);
    let rolp = report.rolp.expect("rolp");
    assert!(rolp.reconciliations >= 4, "all four corrupted threads repaired: {rolp:?}");
    for t in &rt.vm.env.threads {
        assert_eq!(t.tss, 0, "thread stack state repaired at GC end");
    }
}
