//! Cross-crate end-to-end tests: the full stack (heap + VM + GC + ROLP +
//! workloads) exercised through the public API.

use rolp::runtime::{CollectorKind, JvmRuntime, RuntimeConfig};
use rolp_heap::{HeapConfig, RegionKind};
use rolp_vm::{GuestException, ProgramBuilder, ThreadId};
use rolp_workloads::{execute, CassandraMix, CassandraParams, CassandraWorkload, RunBudget};

fn small_heap() -> HeapConfig {
    HeapConfig { region_bytes: 64 * 1024, max_heap_bytes: 24 << 20 }
}

fn cassandra_small() -> CassandraWorkload {
    CassandraWorkload::new(CassandraParams {
        mix: CassandraMix::WriteIntensive,
        memtable_flush_entries: 2_000,
        key_space: 20_000,
        row_cache_entries: 1_000,
        op_pacing_ns: 2_000,
        ..Default::default()
    })
}

#[test]
fn identical_seeds_produce_identical_runs() {
    let run = || {
        let mut w = cassandra_small();
        let config = RuntimeConfig {
            collector: CollectorKind::RolpNg2c,
            heap: small_heap(),
            ..Default::default()
        };
        let out = execute(&mut w, config, &RunBudget::smoke(30_000));
        (
            out.report.elapsed.as_nanos(),
            out.report.gc_cycles,
            out.report.pauses,
            out.report.max_used_bytes,
            out.pauses.histogram().percentile(99.0),
        )
    };
    assert_eq!(run(), run(), "the whole stack must be deterministic per seed");
}

#[test]
fn rolp_learns_and_pretenures_on_the_kv_store() {
    let mut w = cassandra_small();
    let config = RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: small_heap(),
        ..Default::default()
    };
    let out = execute(&mut w, config, &RunBudget::smoke(120_000));
    let rolp = out.report.rolp.expect("rolp stats");
    assert!(rolp.inferences >= 2, "inference must run: {rolp:?}");
    assert!(rolp.decisions >= 2, "lifetime decisions expected: {rolp:?}");
    assert!(rolp.profiled_allocations > 10_000);
    assert!(rolp.survivor_records > 0);
}

#[test]
fn rolp_tail_approaches_ng2c_and_beats_g1() {
    // A GC-heavy run with the copy bandwidth scaled to the tiny heap so
    // copying dominates pauses; the discard covers the learning phase.
    let budget = RunBudget {
        sim_time: rolp_metrics::SimTime::from_secs(3),
        warmup_discard: rolp_metrics::SimTime::from_secs(2),
        max_ops: u64::MAX,
    };
    let tail = |kind| {
        let mut w = cassandra_small();
        let config = RuntimeConfig {
            collector: kind,
            heap: small_heap(),
            cost: rolp_vm::CostModel::scaled(rolp_metrics::SimScale::new(256)),
            ..Default::default()
        };
        let out = execute(&mut w, config, &budget);
        out.pauses.percentile_ms(99.0)
    };
    let g1 = tail(CollectorKind::G1);
    let rolp = tail(CollectorKind::RolpNg2c);
    assert!(rolp < g1 * 0.8, "ROLP p99 ({rolp:.2} ms) should be well below G1 ({g1:.2} ms)");
}

#[test]
fn every_collector_survives_the_kv_store_with_a_valid_heap() {
    for kind in CollectorKind::all() {
        let mut w = cassandra_small();
        let config = RuntimeConfig { collector: kind, heap: small_heap(), ..Default::default() };
        let out = execute(&mut w, config, &RunBudget::smoke(25_000));
        assert_eq!(out.report.ops, 25_000, "{kind:?} lost operations");
        assert!(out.report.gc_cycles > 0, "{kind:?} never collected");
    }
}

#[test]
fn exception_unwinding_with_rolp_keeps_stack_state_consistent() {
    let mut b = ProgramBuilder::new();
    let main = b.method("app.Main::run", 60, false);
    let risky = b.method("app.Parser::parse", 150, false);
    let cs = b.call_site(main, risky);
    let site = b.alloc_site(risky, 2);
    let program = b.build();

    let config = RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: small_heap(),
        ..Default::default()
    };
    let mut rt = JvmRuntime::new(config, program);
    let class = rt.vm.env.heap.classes.register("app.Obj");

    for i in 0u64..50_000 {
        let mut ctx = rt.ctx(ThreadId(0));
        let r = ctx.call_fallible(cs, |ctx| {
            ctx.work(10);
            let h = ctx.alloc(site, class, 0, 8);
            ctx.release(h);
            if i % 7 == 0 {
                Err(GuestException { code: 1 })
            } else {
                Ok(())
            }
        });
        assert_eq!(r.is_err(), i % 7 == 0);
    }
    // The exception-rethrow hook (§7.2.2) keeps the TSS consistent; on an
    // empty stack it must be zero.
    assert_eq!(rt.vm.env.threads[0].tss, 0, "TSS leaked through exception unwinding");
}

#[test]
fn biased_locking_objects_are_skipped_not_fatal() {
    let mut b = ProgramBuilder::new();
    let main = b.method("app.Main::run", 60, false);
    let hot = b.method("app.Maker::make", 100, false);
    let cs = b.call_site(main, hot);
    let site = b.alloc_site(hot, 1);
    let program = b.build();

    let config = RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: small_heap(),
        ..Default::default()
    };
    let mut rt = JvmRuntime::new(config, program);
    let class = rt.vm.env.heap.classes.register("app.Lockable");

    let mut held = Vec::new();
    for i in 0..60_000 {
        let mut ctx = rt.ctx(ThreadId(0));
        let h = ctx.call(cs, |ctx| ctx.alloc(site, class, 0, 64));
        if i % 3 == 0 {
            ctx.bias_lock(h); // destroys the allocation context
        }
        held.push(h);
        if held.len() > 2_000 {
            let old = held.remove(0);
            rt.ctx(ThreadId(0)).release(old);
        }
    }
    let report = rt.report();
    let rolp = report.rolp.expect("rolp stats");
    // Profiling continued for the unbiased objects.
    assert!(rolp.profiled_allocations > 10_000);
    assert!(report.gc_cycles > 0);
}

#[test]
fn ng2c_annotations_route_objects_to_their_generations() {
    let mut b = ProgramBuilder::new();
    let main = b.method("app.Main::run", 60, false);
    let hot = b.method("app.Maker::make", 100, false);
    let cs = b.call_site(main, hot);
    let site = b.alloc_site(hot, 1);
    let program = b.build();

    let config =
        RuntimeConfig { collector: CollectorKind::Ng2c, heap: small_heap(), ..Default::default() };
    let mut rt = JvmRuntime::new(config, program);
    let class = rt.vm.env.heap.classes.register("app.Annotated");

    let mut ctx = rt.ctx(ThreadId(0));
    let h = ctx.call(cs, |ctx| ctx.alloc_annotated(site, class, 0, 6, 9));
    let obj = rt.vm.env.heap.handles.get(h);
    assert_eq!(rt.vm.env.heap.region(obj.region()).kind, RegionKind::Dynamic(9));
}

#[test]
fn out_of_memory_panics_with_a_diagnostic() {
    let result = std::panic::catch_unwind(|| {
        let mut b = ProgramBuilder::new();
        let main = b.method("app.Main::run", 60, false);
        let hot = b.method("app.Maker::make", 100, false);
        let cs = b.call_site(main, hot);
        let site = b.alloc_site(hot, 1);
        let program = b.build();

        let config = RuntimeConfig {
            collector: CollectorKind::G1,
            heap: HeapConfig { region_bytes: 16 * 1024, max_heap_bytes: 256 * 1024 },
            ..Default::default()
        };
        let mut rt = JvmRuntime::new(config, program);
        let class = rt.vm.env.heap.classes.register("app.Retained");
        let mut held = Vec::new();
        for _ in 0..100_000 {
            let mut ctx = rt.ctx(ThreadId(0));
            held.push(ctx.call(cs, |ctx| ctx.alloc(site, class, 0, 32)));
        }
    });
    let err = result.expect_err("retaining everything must exhaust the heap");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("OutOfMemoryError"), "got panic: {msg}");
}
