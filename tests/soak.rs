//! Soak test: sustained mixed workload under ROLP with periodic
//! whole-heap verification (structure + remembered-set completeness after
//! full compactions).

use rolp::runtime::{CollectorKind, JvmRuntime, RuntimeConfig};
use rolp_heap::verify::verify_heap;
use rolp_heap::HeapConfig;
use rolp_vm::ThreadId;
use rolp_workloads::{CassandraMix, CassandraParams, CassandraWorkload, Workload};

#[test]
fn sustained_kv_load_keeps_the_heap_valid() {
    let mut w = CassandraWorkload::new(CassandraParams {
        mix: CassandraMix::WriteIntensive,
        memtable_flush_entries: 2_500,
        key_space: 25_000,
        row_cache_entries: 1_200,
        op_pacing_ns: 1_000,
        ..Default::default()
    });
    let config = RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: HeapConfig { region_bytes: 64 * 1024, max_heap_bytes: 24 << 20 },
        threads: 2,
        ..Default::default()
    };
    let program = w.build_program();
    let mut rt = JvmRuntime::new(config, program);
    w.setup(&mut rt);

    let mut last_cycles = 0;
    for i in 0..200_000u64 {
        let mut ctx = rt.ctx(ThreadId((i % 2) as u32));
        w.tick(&mut ctx);

        // Verify at (roughly) every 25th GC cycle — expensive, so sparse.
        let cycles = rt.vm.collector.gc_cycles();
        if cycles >= last_cycles + 25 {
            last_cycles = cycles;
            let errors = verify_heap(&rt.vm.env.heap, false);
            assert!(
                errors.is_empty(),
                "heap invariants violated after {cycles} cycles: {:?}",
                errors.first()
            );
        }
    }
    assert!(last_cycles >= 50, "the soak must actually exercise many collections");

    // Final deep check including remembered-set completeness right after a
    // marking-grade event: run a full compaction and verify everything.
    let mut hooks = rolp_gc::NullHooks;
    rolp_gc::full_compact(&mut rt.vm.env, &mut hooks);
    let errors = verify_heap(&rt.vm.env.heap, true);
    assert!(errors.is_empty(), "post-compaction heap invalid: {:?}", errors.first());

    // The workload's own data structures survived it all.
    assert!(w.flushes >= 10);
    let report = rt.report();
    let rolp = report.rolp.expect("rolp stats");
    assert!(rolp.inferences >= 3);
    assert!(rolp.decisions >= 2);
}
