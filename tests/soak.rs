//! Soak test: sustained mixed workload under ROLP with periodic
//! whole-heap verification (structure + remembered-set completeness after
//! full compactions).
//!
//! Iteration counts are env-bounded: set `ROLP_SOAK_ITERS` to shorten (or
//! lengthen) the soaks without editing the test. Both runs are fully
//! seed-deterministic — the runtime seed is pinned below, so two runs of
//! the same binary see the same allocation stream.

use rolp::governor::{GovernorConfig, GovernorState};
use rolp::runtime::{CollectorKind, JvmRuntime, RuntimeConfig};
use rolp_heap::verify::verify_heap;
use rolp_heap::HeapConfig;
use rolp_vm::ThreadId;
use rolp_workloads::{CassandraMix, CassandraParams, CassandraWorkload, Workload};

/// Deterministic seed for every soak run (also the default runtime seed,
/// pinned here explicitly so a config-default change cannot silently
/// change what this test exercises).
const SOAK_SEED: u64 = 42;

/// Soak length: `ROLP_SOAK_ITERS` ticks, default 200k.
fn soak_iters() -> u64 {
    std::env::var("ROLP_SOAK_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(200_000)
}

fn soak_workload() -> CassandraWorkload {
    CassandraWorkload::new(CassandraParams {
        mix: CassandraMix::WriteIntensive,
        memtable_flush_entries: 2_500,
        key_space: 25_000,
        row_cache_entries: 1_200,
        op_pacing_ns: 1_000,
        ..Default::default()
    })
}

#[test]
fn sustained_kv_load_keeps_the_heap_valid() {
    let mut w = soak_workload();
    let config = RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: HeapConfig { region_bytes: 64 * 1024, max_heap_bytes: 24 << 20 },
        threads: 2,
        seed: SOAK_SEED,
        ..Default::default()
    };
    let program = w.build_program();
    let mut rt = JvmRuntime::new(config, program);
    w.setup(&mut rt);

    let iters = soak_iters();
    let mut last_cycles = 0;
    for i in 0..iters {
        let mut ctx = rt.ctx(ThreadId((i % 2) as u32));
        w.tick(&mut ctx);

        // Verify at (roughly) every 25th GC cycle — expensive, so sparse.
        let cycles = rt.vm.collector.gc_cycles();
        if cycles >= last_cycles + 25 {
            last_cycles = cycles;
            let errors = verify_heap(&rt.vm.env.heap, false);
            assert!(
                errors.is_empty(),
                "heap invariants violated after {cycles} cycles: {:?}",
                errors.first()
            );
        }
    }
    if iters >= 200_000 {
        assert!(last_cycles >= 50, "the soak must actually exercise many collections");
    }

    // Final deep check including remembered-set completeness right after a
    // marking-grade event: run a full compaction and verify everything.
    let mut hooks = rolp_gc::NullHooks;
    rolp_gc::full_compact(&mut rt.vm.env, &mut hooks);
    let errors = verify_heap(&rt.vm.env.heap, true);
    assert!(errors.is_empty(), "post-compaction heap invalid: {:?}", errors.first());

    // The workload's own data structures survived it all.
    if iters >= 200_000 {
        assert!(w.flushes >= 10);
        let report = rt.report();
        let rolp = report.rolp.expect("rolp stats");
        assert!(rolp.inferences >= 3);
        assert!(rolp.decisions >= 2);
    }
}

/// Fault-plan soak: a sustained allocation burst pushes the governor all
/// the way down (`Full → Reduced → SitesOnly → Off`), then subsides so
/// the hysteresis climbs back to `Full` — with whole-heap verification
/// running throughout. Exercises the ISSUE acceptance path end to end:
/// degradation under injected pressure never corrupts the heap and the
/// profiler recovers on its own.
#[test]
fn fault_plan_soak_cycles_full_to_off_and_back() {
    let mut w = soak_workload();
    let mut config = RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: HeapConfig { region_bytes: 64 * 1024, max_heap_bytes: 24 << 20 },
        threads: 2,
        seed: SOAK_SEED,
        ..Default::default()
    };
    // 500k injected events/cycle for cycles 24..80 blows the 2M/epoch
    // record budget (16-cycle epochs see 8M), stepping the governor down
    // one state per hot epoch; after cycle 80 the plan is quiet, so each
    // calm epoch climbs one state back up.
    config.rolp.fault_plan =
        Some(rolp_faults::FaultPlan::parse("seed=5;burst@24..80x500000").expect("valid plan"));
    config.rolp.governor =
        Some(GovernorConfig { calm_epochs_to_recover: 1, ..GovernorConfig::default() });

    let program = w.build_program();
    let mut rt = JvmRuntime::new(config, program);
    w.setup(&mut rt);

    let iters = soak_iters();
    let mut seen_states = std::collections::BTreeSet::new();
    let mut last_verified = 0;
    let mut i = 0u64;
    // Run until the governor has had time to fall and climb back
    // (~150 cycles at 16-cycle epochs), bounded by 2x the soak budget.
    while rt.vm.collector.gc_cycles() < 160 && i < iters * 2 {
        let mut ctx = rt.ctx(ThreadId((i % 2) as u32));
        w.tick(&mut ctx);
        i += 1;

        let state =
            rt.profiler.as_ref().expect("rolp run").borrow().governor_state().expect("governed");
        seen_states.insert(state.label());

        let cycles = rt.vm.collector.gc_cycles();
        if cycles >= last_verified + 25 {
            last_verified = cycles;
            let errors = verify_heap(&rt.vm.env.heap, false);
            assert!(
                errors.is_empty(),
                "heap invariants violated under faults after {cycles} cycles: {:?}",
                errors.first()
            );
        }
    }
    assert!(
        rt.vm.collector.gc_cycles() >= 160,
        "soak too short to cycle the governor: {} cycles after {i} ticks",
        rt.vm.collector.gc_cycles()
    );

    // The governor visited Off and came all the way back.
    assert!(seen_states.contains("off"), "states seen: {seen_states:?}");
    assert!(seen_states.contains("full"));
    let final_state = rt.profiler.as_ref().unwrap().borrow().governor_state().expect("governed");
    assert_eq!(final_state, GovernorState::Full, "hysteresis climbed back after the burst");

    let report = rt.report();
    let stats = report.rolp.expect("rolp stats");
    assert!(stats.governor_transitions >= 6, "3 down + 3 up, got {}", stats.governor_transitions);
    assert!(stats.injected_fault_events > 0);

    // The heap survived the whole ride.
    let mut hooks = rolp_gc::NullHooks;
    rolp_gc::full_compact(&mut rt.vm.env, &mut hooks);
    let errors = verify_heap(&rt.vm.env.heap, true);
    assert!(errors.is_empty(), "post-compaction heap invalid: {:?}", errors.first());
}
