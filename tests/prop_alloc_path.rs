//! Differential test plane for the allocation fast path.
//!
//! The TLAB + decision-micro-cache + batched-age-0 path is an
//! *optimization*, not a semantic change: any allocation stream replayed
//! through the fast path must be observationally identical to the
//! per-allocation reference path (TLABs disabled, micro-cache disabled,
//! unbatched OLD-table increments). This suite generates arbitrary
//! streams and holds the fast path to that contract across all three
//! OLD-table backends:
//!
//! - published `DecisionTable` digests are identical (the micro-cache
//!   never serves stale advice that changes an outcome),
//! - OLD-table contents (touched rows and full age histograms) are
//!   identical (batched flushing loses nothing the reference records),
//! - GC scheduling is identical (the fast path declines exactly when the
//!   slow path would have collected), and
//! - with a single mutator thread, heap object *placement* is bit-exact
//!   (TLAB retirement restores the precise shared-path frontier).

use proptest::prelude::*;
use rolp::runtime::{CollectorKind, JvmRuntime, RunReport, RuntimeConfig};
use rolp::LifetimeTable;
use rolp_heap::{HeapConfig, RegionKind};
use rolp_vm::{AllocSiteId, CallSiteId, ProgramBuilder, ThreadId};

/// One step of a generated allocation stream.
#[derive(Debug, Clone, Copy)]
struct Op {
    /// Worker method (selects the call path and therefore the TSS).
    worker: usize,
    /// Allocation site within the worker.
    site: usize,
    /// Reference fields of the allocated object.
    refs: u16,
    /// Data words of the allocated object.
    data: u32,
    /// Slot in the keep-alive table; the previous occupant is released,
    /// so slot reuse frequency controls object lifetime.
    hold_slot: usize,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..3, 0usize..2, 0u16..3, 0u32..12, 0usize..96).prop_map(
        |(worker, site, refs, data, hold_slot)| Op { worker, site, refs, data, hold_slot },
    )
}

/// How a run reads back for comparison.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    /// FNV digest of the published decision table.
    decision_digest: u64,
    /// Full OLD-table contents: sorted touched rows with age histograms.
    old_rows: Vec<(u32, [u32; 16])>,
    /// Pretenuring decisions count.
    decisions: usize,
    /// GC cycles: the fast path must not perturb the collection schedule.
    gc_cycles: u64,
    /// Completed guest operations.
    ops: u64,
    /// Object placement: `(region, offset, size, kind)` for every live
    /// object, after the end-of-run safepoint retired all buffers.
    placement: Vec<(u32, u32, u32, String)>,
}

fn replay(
    stream: &[Op],
    rounds: usize,
    threads: u32,
    shards: Option<usize>,
    fast: bool,
) -> Observation {
    let mut b = ProgramBuilder::new();
    let main = b.method("app.Main::run", 100, false);
    let mut calls: Vec<CallSiteId> = Vec::new();
    let mut sites: Vec<Vec<AllocSiteId>> = Vec::new();
    for i in 0..3usize {
        let m = b.method(format!("app.Worker{i}::step"), 60 + 10 * i as u32, false);
        calls.push(b.call_site(main, m));
        sites.push((0..2).map(|j| b.alloc_site(m, j + 1)).collect());
    }
    let program = b.build();

    let mut config = RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: HeapConfig { region_bytes: 16 * 1024, max_heap_bytes: 4 << 20 },
        threads,
        seed: 7,
        ..Default::default()
    };
    config.rolp.table_shards = shards;
    if !fast {
        // The reference path: shared-state lookup and a per-allocation
        // OLD-table increment on every single allocation.
        config.tlab_bytes = 0;
        config.microcache = false;
        config.rolp.batch_age0 = false;
    }

    let mut rt = JvmRuntime::new(config, program);
    let class = rt.vm.env.heap.classes.register("app.Item");
    let mut held: Vec<Option<rolp_heap::Handle>> = vec![None; 96];

    let mut i = 0u64;
    for _ in 0..rounds {
        for op in stream {
            let thread = ThreadId((i % threads as u64) as u32);
            i += 1;
            let mut ctx = rt.ctx(thread);
            ctx.call(calls[op.worker], |ctx| {
                let h = ctx.alloc(sites[op.worker][op.site], class, op.refs, op.data);
                if let Some(old) = held[op.hold_slot].replace(h) {
                    ctx.release(old);
                }
                ctx.complete_ops(1);
            });
        }
    }

    let report: RunReport = rt.report();
    let rolp = report.rolp.expect("profiled run");

    let p = rt.profiler.as_ref().expect("profiler").borrow();
    let old_rows: Vec<(u32, [u32; 16])> =
        p.old.touched_rows().into_iter().map(|r| (r, p.old.histogram(r))).collect();
    let decision_digest = p.decision_store().snapshot().digest();
    drop(p);

    let heap = &rt.vm.env.heap;
    let mut placement = Vec::new();
    for (id, region) in heap.regions() {
        if matches!(region.kind, RegionKind::Free | RegionKind::HumongousCont) {
            continue;
        }
        for obj in heap.objects_in_region(id) {
            placement.push((
                id.0,
                obj.offset(),
                heap.size_words(obj),
                format!("{:?}", region.kind),
            ));
        }
    }

    Observation {
        decision_digest,
        old_rows,
        decisions: rolp.decisions,
        gc_cycles: report.gc_cycles,
        ops: report.ops,
        placement,
    }
}

fn assert_equivalent(stream: &[Op], rounds: usize, threads: u32, shards: Option<usize>) {
    let fast = replay(stream, rounds, threads, shards, true);
    let reference = replay(stream, rounds, threads, shards, false);

    assert_eq!(
        fast.decision_digest, reference.decision_digest,
        "published decision digests diverged (threads={threads}, shards={shards:?})"
    );
    assert_eq!(
        fast.old_rows, reference.old_rows,
        "OLD-table contents diverged (threads={threads}, shards={shards:?})"
    );
    assert_eq!(fast.decisions, reference.decisions);
    assert_eq!(
        fast.gc_cycles, reference.gc_cycles,
        "the fast path changed the GC schedule (threads={threads}, shards={shards:?})"
    );
    assert_eq!(fast.ops, reference.ops);
    if threads == 1 {
        // Single-threaded, TLAB retirement rolls every buffer back to the
        // exact shared-path frontier: placement is bit-identical.
        assert_eq!(
            fast.placement, reference.placement,
            "heap placement diverged (shards={shards:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Arbitrary streams, sequential backend (one thread): full
    /// observational identity including bit-exact placement.
    #[test]
    fn prop_alloc_path_sequential(stream in prop::collection::vec(op_strategy(), 64..256)) {
        assert_equivalent(&stream, 24, 1, None);
    }

    /// Arbitrary streams, relaxed shared backend (two threads).
    #[test]
    fn prop_alloc_path_shared(stream in prop::collection::vec(op_strategy(), 64..256)) {
        assert_equivalent(&stream, 24, 2, None);
    }

    /// Arbitrary streams, sharded backend (exact counting, four shards).
    #[test]
    fn prop_alloc_path_sharded(stream in prop::collection::vec(op_strategy(), 64..256)) {
        assert_equivalent(&stream, 24, 2, Some(4));
    }
}

/// A long deterministic soak of the same contract on the default
/// configuration: quick to rerun in CI's `alloc-micro` job.
#[test]
fn fast_path_matches_reference_on_default_config() {
    let stream: Vec<Op> = (0..192u64)
        .map(|i| {
            // Small multiplicative hash: spreads ops without rand.
            let r = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
            Op {
                worker: (r % 3) as usize,
                site: ((r >> 3) % 2) as usize,
                refs: ((r >> 5) % 3) as u16,
                data: ((r >> 7) % 12) as u32,
                hold_slot: ((r >> 11) % 96) as usize,
            }
        })
        .collect();
    assert_equivalent(&stream, 40, 1, None);
    assert_equivalent(&stream, 40, 4, Some(4));
}
