#!/usr/bin/env python3
"""Service-mode acceptance gate for the `serve-smoke` CI job.

Reads two `rolp-serve-v1` summaries produced by `rolp-serve` for the SAME
arrival schedule and seed — one under ROLP, one under the comparison
collector (G1) — and enforces the three service-mode acceptance
criteria:

  (a) decomposition soundness: each run's per-request latency
      decomposition (app + GC + profiler + JIT + idle, summed from the
      telemetry plane's bucket deltas) equals its total service wall
      time within --max-decomp-error;
  (b) SLO attainment under ROLP is strictly better than under the
      comparison collector at the primary (tightest) threshold, and
      ROLP's corrected p99 is no higher;
  (c) re-convergence: after every mid-run phase shift, the ROLP run's
      decision table went quiet within --max-reconverge-epochs
      inference epochs, and the final table then stayed stable to the
      end of the run.

Usage:
    scripts/slo_gate.py <rolp.json> <baseline.json>
                        [--max-decomp-error 0.01]
                        [--max-reconverge-epochs 8]

Exit status: 0 = all criteria hold, 1 = a criterion failed,
2 = usage/format error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"slo_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if data.get("schema") != "rolp-serve-v1":
        print(f"slo_gate: {path} is not a rolp-serve-v1 summary", file=sys.stderr)
        sys.exit(2)
    return data


def field(doc, path, *keys):
    """Walks nested keys, failing readably instead of with a KeyError."""
    cur = doc
    for k in keys:
        try:
            cur = cur[k]
        except (KeyError, TypeError, IndexError):
            dotted = ".".join(str(k) for k in keys)
            print(f"slo_gate: {path} is missing '{dotted}' — regenerate it "
                  f"with the current rolp-serve binary", file=sys.stderr)
            sys.exit(2)
    return cur


def check_comparable(rolp, base, rolp_path, base_path):
    """The comparison is only meaningful on the same offered load."""
    for k in ("phases", "process", "seed", "scale", "threads"):
        a, b = field(rolp, rolp_path, k), field(base, base_path, k)
        if a != b:
            print(f"slo_gate: {k} differs between runs ({a!r} vs {b!r}) — "
                  f"the SLO comparison needs an identical arrival schedule",
                  file=sys.stderr)
            sys.exit(2)


def check_decomposition(doc, path, max_err):
    d = field(doc, path, "decomposition")
    rel = field(doc, path, "decomposition", "rel_error")
    ok = rel <= max_err
    print(f"  [{'OK' if ok else 'FAILED'}] {path}: decomposition "
          f"{d['decomposed_ms']:.1f} ms vs service wall "
          f"{d['service_wall_ms']:.1f} ms (rel error {rel:.2e}, "
          f"limit {max_err:.0e})")
    if not ok:
        print(f"slo_gate: {path}: decomposition does not sum to service "
              f"wall time (rel error {rel:.2e} > {max_err:.0e}) — a bucket "
              f"is leaking or double-charged", file=sys.stderr)
    return ok


def check_attainment(rolp, base, rolp_path, base_path):
    r0 = field(rolp, rolp_path, "slo", 0)
    b0 = field(base, base_path, "slo", 0)
    if r0["threshold_ms"] != b0["threshold_ms"]:
        print(f"slo_gate: primary SLO differs ({r0['threshold_ms']} ms vs "
              f"{b0['threshold_ms']} ms)", file=sys.stderr)
        sys.exit(2)
    r_att, b_att = r0["attainment"], b0["attainment"]
    r_p99 = field(rolp, rolp_path, "latency", "corrected_p99_ms")
    b_p99 = field(base, base_path, "latency", "corrected_p99_ms")
    rolp_name = field(rolp, rolp_path, "collector")
    base_name = field(base, base_path, "collector")

    att_ok = r_att > b_att
    print(f"  [{'OK' if att_ok else 'FAILED'}] attainment at "
          f"{r0['threshold_ms']:.1f} ms: {rolp_name} {r_att:.4f} vs "
          f"{base_name} {b_att:.4f}")
    if not att_ok:
        print(f"slo_gate: {rolp_name} attainment {r_att:.4f} is not "
              f"strictly better than {base_name}'s {b_att:.4f} at the "
              f"primary SLO", file=sys.stderr)

    p99_ok = r_p99 <= b_p99
    print(f"  [{'OK' if p99_ok else 'FAILED'}] corrected p99: "
          f"{rolp_name} {r_p99:.2f} ms vs {base_name} {b_p99:.2f} ms")
    if not p99_ok:
        print(f"slo_gate: {rolp_name} corrected p99 {r_p99:.2f} ms exceeds "
              f"{base_name}'s {b_p99:.2f} ms", file=sys.stderr)
    return att_ok and p99_ok


def check_reconvergence(rolp, path, max_epochs):
    shifts = field(rolp, path, "shifts")
    conv = field(rolp, path, "reconvergence")
    changes = field(rolp, path, "decisions", "digest_changes")
    stable_ms = field(rolp, path, "decisions", "stable_tail_ms")
    if not shifts:
        print(f"slo_gate: {path} has no phase shifts — the schedule must "
              f"ramp or flip tenants mid-run to exercise re-convergence",
              file=sys.stderr)
        sys.exit(2)
    if changes == 0:
        print(f"slo_gate: {path}: the decision table never published — "
              f"no inference ran (raise the schedule length or lower "
              f"--inference-period)", file=sys.stderr)
        return False
    ok = True
    for c in conv:
        e = c["epochs_to_reconverge"]
        within = e <= max_epochs
        print(f"  [{'OK' if within else 'FAILED'}] shift into phase "
              f"{c['phase']}: {c['changes']} digest change(s), "
              f"re-converged after {e} epoch(s) (limit {max_epochs})")
        if not within:
            print(f"slo_gate: decisions kept churning {e} epoch(s) after "
                  f"the shift into phase {c['phase']} (limit {max_epochs})",
                  file=sys.stderr)
            ok = False
    stable_ok = stable_ms > 0
    print(f"  [{'OK' if stable_ok else 'FAILED'}] final table stable for "
          f"{stable_ms:.0f} ms ({changes} publication(s) total)")
    if not stable_ok:
        print(f"slo_gate: the decision table was still changing at run end",
              file=sys.stderr)
    return ok and stable_ok


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("rolp", help="rolp-serve-v1 summary of the ROLP run")
    ap.add_argument("baseline",
                    help="rolp-serve-v1 summary of the comparison run "
                         "(same schedule and seed)")
    ap.add_argument("--max-decomp-error", type=float, default=0.01,
                    help="allowed relative error between the summed "
                         "decomposition and service wall time (default 0.01)")
    ap.add_argument("--max-reconverge-epochs", type=int, default=8,
                    help="inference epochs allowed between a phase shift "
                         "and the last decision change (default 8)")
    args = ap.parse_args()

    rolp = load(args.rolp)
    base = load(args.baseline)
    check_comparable(rolp, base, args.rolp, args.baseline)

    failures = []
    print("decomposition soundness:")
    if not check_decomposition(rolp, args.rolp, args.max_decomp_error):
        failures.append("decomposition (rolp)")
    if not check_decomposition(base, args.baseline, args.max_decomp_error):
        failures.append("decomposition (baseline)")
    print("SLO attainment:")
    if not check_attainment(rolp, base, args.rolp, args.baseline):
        failures.append("attainment")
    print("re-convergence after phase shifts:")
    if not check_reconvergence(rolp, args.rolp, args.max_reconverge_epochs):
        failures.append("re-convergence")

    if failures:
        print(f"slo_gate: FAILED: {', '.join(failures)}", file=sys.stderr)
        sys.exit(1)
    print("slo_gate: all service-mode criteria hold")


if __name__ == "__main__":
    main()
