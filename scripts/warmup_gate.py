#!/usr/bin/env python3
"""Warm-start gate: the profile import must kill the warmup cliff.

Two modes, both asserting the Fig. 10 warm-start property — a restarted
service that imports the profile a previous run exported must be stable
from the first epoch and must not pay the cold run's warmup pause tail:

1. `--cold cold.json --warm warm.json` — two `--stats-json` files from
   CLI runs of the same preset (the cold run exported the profile with
   `--profile-out`, the warm run imported it with `--profile-in`; both
   with `--discard 0` so the warmup window is visible in the
   percentiles). Asserts:
     - the warm run's decision table never changed after import
       (`rolp.last_change_epoch == 0`), and
     - the warm run's p99 pause is no worse than the cold run's.

2. `--bench fig10.json` — the `ROLP_BENCH_JSON` file from the
   `ROLP_BENCH_WARMUP=1` fig10 run. Asserts:
     - the `ROLP (warm)` row stabilizes strictly earlier than
       `ROLP (cold)` (at epoch 0 when cold was already stable at 0).
       The fig10 rows run 4 mutator threads with the TLAB fast path,
       where cold and warm GC cadences genuinely diverge (warm
       pretenures from the first cycle), so borderline rows may
       re-estimate by a quantile bin; the CLI mode above, whose
       cadences coincide, keeps the strict epoch-0 form.
     - its warmup-window p99 is strictly below `ROLP (cold)`'s, and
     - the `ROLP (drifted-warm)` row (profile learned under different
       traffic) still beats cold — the confidence blend converges
       instead of replaying stale decisions.

Exit status: 0 = gate holds, 1 = violation, 2 = usage/format error.
"""

import argparse
import json
import sys


def usage_error(msg):
    print(f"warmup_gate: {msg}", file=sys.stderr)
    sys.exit(2)


def fail(msg):
    print(f"warmup_gate: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        usage_error(f"cannot read {path}: {e}")


def get(obj, path_desc, *keys):
    """Walks nested keys, failing readably when a key is absent (the
    stats file predates the field or the run was not a ROLP run)."""
    cur = obj
    for k in keys:
        if not isinstance(cur, dict) or k not in cur:
            dotted = ".".join(keys)
            usage_error(f"{path_desc} is missing '{dotted}' — regenerate "
                        f"with the current build (is this a ROLP run?)")
        cur = cur[k]
    return cur


def check_cli(cold_path, warm_path):
    cold = load(cold_path)
    warm = load(warm_path)

    warm_stable = get(warm, warm_path, "rolp", "last_change_epoch")
    cold_stable = get(cold, cold_path, "rolp", "last_change_epoch")
    cold_p99 = get(cold, cold_path, "pauses", "p99_ms")
    warm_p99 = get(warm, warm_path, "pauses", "p99_ms")
    applied = get(warm, warm_path, "rolp", "profile_entries_applied") \
        if "profile_entries_applied" in warm.get("rolp", {}) else None

    print(f"  cold: p99 {cold_p99:.2f} ms, decisions stable at epoch "
          f"{cold_stable}")
    extra = f", {applied} profile entries applied" if applied is not None else ""
    print(f"  warm: p99 {warm_p99:.2f} ms, decisions stable at epoch "
          f"{warm_stable}{extra}")

    if applied is not None and applied == 0:
        fail(f"{warm_path}: warm run applied 0 profile entries — the "
             f"import was rejected or empty, so this measures nothing")
    if warm_stable != 0:
        fail(f"{warm_path}: warm run's decision table still changed at "
             f"epoch {warm_stable}; a warm start must be stable from "
             f"epoch 0")
    if warm_p99 > cold_p99:
        fail(f"warm run p99 {warm_p99:.2f} ms exceeds cold run p99 "
             f"{cold_p99:.2f} ms — the imported profile made things worse")
    print("warmup_gate: warm start stable at epoch 0, "
          f"p99 {warm_p99:.2f} <= cold {cold_p99:.2f} ms")


def check_bench(path):
    data = load(path)
    rows = data.get("results")
    if not isinstance(rows, list) or not rows:
        usage_error(f"{path} is not a bench stats file")

    by_label = {}
    for row in rows:
        by_label[row.get("collector")] = row

    def row_of(label):
        if label not in by_label:
            usage_error(f"{path} has no '{label}' row — run the fig10 "
                        f"bench with ROLP_BENCH_WARMUP=1")
        return by_label[label]

    def fields(label):
        row = row_of(label)
        desc = f"{path} row '{label}'"
        return (get(row, desc, "warmup_p99_ms"),
                get(row, desc, "epochs_to_stable"))

    cold_p99, cold_stable = fields("ROLP (cold)")
    warm_p99, warm_stable = fields("ROLP (warm)")
    drift_p99, drift_stable = fields("ROLP (drifted-warm)")

    print(f"  cold:         warmup p99 {cold_p99:.2f} ms, stable at epoch "
          f"{cold_stable}")
    print(f"  warm:         warmup p99 {warm_p99:.2f} ms, stable at epoch "
          f"{warm_stable}")
    print(f"  drifted-warm: warmup p99 {drift_p99:.2f} ms, stable at epoch "
          f"{drift_stable}")

    if cold_stable == 0:
        if warm_stable != 0:
            fail(f"cold was stable from epoch 0 but the warm start still "
                 f"changed at epoch {warm_stable}")
    elif warm_stable >= cold_stable:
        fail(f"warm start only stabilized at epoch {warm_stable}, no "
             f"earlier than cold's epoch {cold_stable} — the import "
             f"bought no learning time")
    if warm_p99 >= cold_p99:
        fail(f"warm warmup-window p99 {warm_p99:.2f} ms is not strictly "
             f"below cold's {cold_p99:.2f} ms — the warmup cliff is back")
    if drift_p99 >= cold_p99:
        fail(f"drifted-warm warmup-window p99 {drift_p99:.2f} ms is not "
             f"below cold's {cold_p99:.2f} ms — the blend is not "
             f"converging under traffic drift")
    print(f"warmup_gate: warm start stable at epoch {warm_stable} (cold: "
          f"{cold_stable}) and beats cold ({warm_p99:.2f} < "
          f"{cold_p99:.2f} ms); drift converges ({drift_p99:.2f} < "
          f"{cold_p99:.2f} ms)")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--cold", help="--stats-json of the cold (--profile-out) run")
    ap.add_argument("--warm", help="--stats-json of the warm (--profile-in) run")
    ap.add_argument("--bench", help="ROLP_BENCH_JSON of the ROLP_BENCH_WARMUP=1 fig10 run")
    args = ap.parse_args()

    if args.bench:
        check_bench(args.bench)
    elif args.cold or args.warm:
        if not (args.cold and args.warm):
            usage_error("--cold and --warm must be passed together")
        check_cli(args.cold, args.warm)
    else:
        usage_error("nothing to check: pass --cold/--warm or --bench")


if __name__ == "__main__":
    main()
