#!/usr/bin/env python3
"""Pause-time regression gate for the per-PR bench smoke run.

Compares a fresh `ROLP_BENCH_JSON` stats file (from the quick-mode
`fig8_9_pause_distribution` bench) against the committed baseline and
fails if any (workload, collector) pair's p99 pause regressed by more
than the allowed margin. The simulation is deterministic at a fixed
scale, so the margin only needs to absorb intentional code-change drift,
not machine noise.

A current row with no baseline counterpart fails the gate by default —
it usually means the baseline was not regenerated after adding a gate
row. Pass `--allow-new-rows` to accept such rows (printed as `[new]`,
not compared), e.g. when staging a new collector row ahead of its
baseline refresh.

Usage:
    scripts/bench_gate.py <current.json> [--baseline BENCH_baseline.json]
                          [--max-regress 0.15] [--allow-new-rows]

Exit status: 0 = within bounds, 1 = regression, 2 = usage/format error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if "results" not in data or "scale" not in data:
        print(f"bench_gate: {path} is not a bench stats file", file=sys.stderr)
        sys.exit(2)
    return data


def field(row, name, path):
    """Reads a row field, failing with a readable message (naming the
    offending row and file) instead of a KeyError traceback when the
    stats file predates the field or was hand-edited."""
    try:
        return row[name]
    except (KeyError, TypeError):
        ident = ""
        if isinstance(row, dict):
            ident = f" ({row.get('workload', '?')} / {row.get('collector', '?')})"
        print(f"bench_gate: result row{ident} in {path} is missing '{name}' — "
              f"regenerate the file with the current bench harness",
              file=sys.stderr)
        sys.exit(2)


def key(row, path):
    return (field(row, "workload", path), field(row, "collector", path))


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current", help="stats JSON written by ROLP_BENCH_JSON")
    ap.add_argument("--baseline", default="BENCH_baseline.json")
    ap.add_argument("--max-regress", type=float, default=0.15,
                    help="allowed fractional p99 increase (default 0.15)")
    ap.add_argument("--allow-new-rows", action="store_true",
                    help="accept current rows absent from the baseline "
                         "instead of failing (use when staging a new gate "
                         "row ahead of its baseline refresh)")
    args = ap.parse_args()

    cur = load(args.current)
    base = load(args.baseline)
    if cur["scale"] != base["scale"]:
        print(f"bench_gate: scale mismatch (current 1/{cur['scale']}, "
              f"baseline 1/{base['scale']}) — numbers are not comparable",
              file=sys.stderr)
        sys.exit(2)

    baseline_rows = {key(r, args.baseline): r for r in base["results"]}
    failures = []
    new_rows = []
    compared = 0
    seen = set()
    for row in cur["results"]:
        k = key(row, args.current)
        seen.add(k)
        ref = baseline_rows.get(k)
        cur_p99 = field(row, "p99_ms", args.current)
        if ref is None:
            status = "skipped" if args.allow_new_rows else "no baseline row"
            print(f"  [new] {row['workload']} / {row['collector']}: "
                  f"p99 {cur_p99:.2f} ms ({status})")
            if not args.allow_new_rows:
                new_rows.append(k)
            continue
        compared += 1
        ref_p99 = field(ref, "p99_ms", args.baseline)
        limit = ref_p99 * (1.0 + args.max_regress)
        verdict = "OK" if cur_p99 <= limit else "REGRESSED"
        print(f"  [{verdict}] {row['workload']} / {row['collector']}: "
              f"p99 {cur_p99:.2f} ms vs baseline {ref_p99:.2f} ms "
              f"(limit {limit:.2f} ms)")
        if cur_p99 > limit:
            print(f"bench_gate: {row['workload']} / {row['collector']}: p99 "
                  f"{cur_p99:.2f} ms exceeds the {limit:.2f} ms tolerance "
                  f"(baseline {ref_p99:.2f} ms + {args.max_regress:.0%})",
                  file=sys.stderr)
            failures.append(k)

        # Warm-start fields: present on ROLP rows since the profile
        # persistence work. A baseline row carrying them obliges the
        # current row to carry them too (field() fails readably if the
        # harness stopped emitting them).
        if "warmup_p99_ms" in ref:
            cur_w = field(row, "warmup_p99_ms", args.current)
            ref_w = field(ref, "warmup_p99_ms", args.baseline)
            wlimit = ref_w * (1.0 + args.max_regress)
            verdict = "OK" if cur_w <= wlimit else "REGRESSED"
            print(f"  [{verdict}] {row['workload']} / {row['collector']}: "
                  f"warmup p99 {cur_w:.2f} ms vs baseline {ref_w:.2f} ms "
                  f"(limit {wlimit:.2f} ms)")
            if cur_w > wlimit:
                print(f"bench_gate: {row['workload']} / {row['collector']}: "
                      f"warmup p99 {cur_w:.2f} ms exceeds the {wlimit:.2f} ms "
                      f"tolerance (baseline {ref_w:.2f} ms + "
                      f"{args.max_regress:.0%})", file=sys.stderr)
                failures.append((k[0], f"{k[1]} [warmup p99]"))
        # Service-mode fields: present on the quick-mode `(served)` rows
        # since the rolp-serve harness. Attainment is gated on an
        # absolute drop (a fraction of requests, not a latency, so a
        # relative margin would be meaningless near 1.0); served p99 uses
        # the same relative margin as the pause percentiles.
        if "slo_attainment" in ref:
            cur_a = field(row, "slo_attainment", args.current)
            ref_a = field(ref, "slo_attainment", args.baseline)
            floor = ref_a - 0.02
            verdict = "OK" if cur_a >= floor else "REGRESSED"
            print(f"  [{verdict}] {row['workload']} / {row['collector']}: "
                  f"SLO attainment {cur_a:.4f} vs baseline {ref_a:.4f} "
                  f"(floor {floor:.4f})")
            if cur_a < floor:
                print(f"bench_gate: {row['workload']} / {row['collector']}: "
                      f"SLO attainment {cur_a:.4f} fell more than 0.02 below "
                      f"the baseline {ref_a:.4f}", file=sys.stderr)
                failures.append((k[0], f"{k[1]} [slo attainment]"))
        if "served_p99_ms" in ref:
            cur_s = field(row, "served_p99_ms", args.current)
            ref_s = field(ref, "served_p99_ms", args.baseline)
            slimit = ref_s * (1.0 + args.max_regress)
            verdict = "OK" if cur_s <= slimit else "REGRESSED"
            print(f"  [{verdict}] {row['workload']} / {row['collector']}: "
                  f"served p99 {cur_s:.2f} ms vs baseline {ref_s:.2f} ms "
                  f"(limit {slimit:.2f} ms)")
            if cur_s > slimit:
                print(f"bench_gate: {row['workload']} / {row['collector']}: "
                      f"served p99 {cur_s:.2f} ms exceeds the {slimit:.2f} ms "
                      f"tolerance (baseline {ref_s:.2f} ms + "
                      f"{args.max_regress:.0%})", file=sys.stderr)
                failures.append((k[0], f"{k[1]} [served p99]"))
        if "epochs_to_stable" in ref:
            cur_e = field(row, "epochs_to_stable", args.current)
            ref_e = field(ref, "epochs_to_stable", args.baseline)
            verdict = "OK" if cur_e <= ref_e else "REGRESSED"
            print(f"  [{verdict}] {row['workload']} / {row['collector']}: "
                  f"stable at epoch {cur_e} vs baseline {ref_e}")
            if cur_e > ref_e:
                print(f"bench_gate: {row['workload']} / {row['collector']}: "
                      f"stable at epoch {cur_e} vs baseline {ref_e}",
                      file=sys.stderr)
                failures.append((k[0], f"{k[1]} [epochs to stable]"))

    # A baseline row with no current counterpart means coverage was
    # silently dropped (a workload or collector stopped being benched) —
    # that must fail as loudly as a regression would.
    dropped = sorted(set(baseline_rows) - seen)
    for w, c in dropped:
        print(f"  [MISSING] {w} / {c}: in {args.baseline} but absent "
              f"from {args.current}")

    if compared == 0:
        print("bench_gate: no comparable rows between current and baseline",
              file=sys.stderr)
        sys.exit(2)
    if failures or dropped or new_rows:
        msgs = []
        if failures:
            names = ", ".join(f"{w}/{c}" for w, c in failures)
            msgs.append(f"p99 regression beyond {args.max_regress:.0%}: {names}")
        if dropped:
            names = ", ".join(f"{w}/{c}" for w, c in dropped)
            msgs.append(f"baseline row(s) missing from current run: {names}")
        if new_rows:
            names = ", ".join(f"{w}/{c}" for w, c in new_rows)
            msgs.append(f"row(s) without a baseline (regenerate "
                        f"BENCH_baseline.json or pass --allow-new-rows): "
                        f"{names}")
        print(f"bench_gate: {'; '.join(msgs)}", file=sys.stderr)
        sys.exit(1)
    print(f"bench_gate: {compared} run(s) within {args.max_regress:.0%} of baseline")


if __name__ == "__main__":
    main()
