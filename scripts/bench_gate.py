#!/usr/bin/env python3
"""Pause-time regression gate for the per-PR bench smoke run.

Compares a fresh `ROLP_BENCH_JSON` stats file (from the quick-mode
`fig8_9_pause_distribution` bench) against the committed baseline and
fails if any (workload, collector) pair's p99 pause regressed by more
than the allowed margin. The simulation is deterministic at a fixed
scale, so the margin only needs to absorb intentional code-change drift,
not machine noise.

A current row with no baseline counterpart fails the gate by default —
it usually means the baseline was not regenerated after adding a gate
row. Pass `--allow-new-rows` to accept such rows (printed as `[new]`,
not compared), e.g. when staging a new collector row ahead of its
baseline refresh.

Micro rows (from the `alloc_micro` bench) carry `ns_per_op` /
`speedup_vs_reference` instead of pause percentiles. Absolute ns/op is
machine-dependent and only printed; the gated value is the within-run
speedup, floored at `--min-speedup` (default 1.0): the fast path must
not lose to the reference path it replaced, on whatever machine the
gate runs.

Multiple current files are merged before comparison (e.g. the fig8/9
stats plus the alloc-micro stats), so the dropped-coverage check spans
the union. A single-bench invocation (e.g. the `alloc-micro` CI job)
passes `--partial` to scope that check to the workloads its file
actually covers.

Usage:
    scripts/bench_gate.py <current.json> [more.json ...]
                          [--baseline BENCH_baseline.json]
                          [--max-regress 0.15] [--min-speedup 1.0]
                          [--allow-new-rows] [--partial]

Exit status: 0 = within bounds, 1 = regression, 2 = usage/format error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if "results" not in data or "scale" not in data:
        print(f"bench_gate: {path} is not a bench stats file", file=sys.stderr)
        sys.exit(2)
    return data


def field(row, name, path):
    """Reads a row field, failing with a readable message (naming the
    offending row and file) instead of a KeyError traceback when the
    stats file predates the field or was hand-edited."""
    try:
        return row[name]
    except (KeyError, TypeError):
        ident = ""
        if isinstance(row, dict):
            ident = f" ({row.get('workload', '?')} / {row.get('collector', '?')})"
        print(f"bench_gate: result row{ident} in {path} is missing '{name}' — "
              f"regenerate the file with the current bench harness",
              file=sys.stderr)
        sys.exit(2)


def key(row, path):
    return (field(row, "workload", path), field(row, "collector", path))


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current", nargs="+",
                    help="stats JSON file(s) written by ROLP_BENCH_JSON; "
                         "several files are merged before comparison")
    ap.add_argument("--baseline", default="BENCH_baseline.json")
    ap.add_argument("--max-regress", type=float, default=0.15,
                    help="allowed fractional p99 increase (default 0.15)")
    ap.add_argument("--min-speedup", type=float, default=1.0,
                    help="floor on micro rows' within-run "
                         "speedup_vs_reference (default 1.0)")
    ap.add_argument("--allow-new-rows", action="store_true",
                    help="accept current rows absent from the baseline "
                         "instead of failing (use when staging a new gate "
                         "row ahead of its baseline refresh)")
    ap.add_argument("--partial", action="store_true",
                    help="current file(s) cover a subset of the benches: "
                         "restrict the dropped-coverage check to the "
                         "workloads they mention")
    args = ap.parse_args()

    # Merge the current files; a (workload, collector) pair appearing in
    # two files is a harness bug, not something to silently last-wins.
    cur_rows = []
    cur_scale = None
    for path in args.current:
        cur = load(path)
        if cur_scale is None:
            cur_scale = cur["scale"]
        elif cur["scale"] != cur_scale:
            print(f"bench_gate: scale mismatch between current files "
                  f"(1/{cur_scale} vs 1/{cur['scale']} in {path})",
                  file=sys.stderr)
            sys.exit(2)
        for row in cur["results"]:
            k = key(row, path)
            if any(key(r, p) == k for r, p in cur_rows):
                print(f"bench_gate: duplicate row {k[0]} / {k[1]} in "
                      f"{path}", file=sys.stderr)
                sys.exit(2)
            cur_rows.append((row, path))

    base = load(args.baseline)
    if cur_scale != base["scale"]:
        print(f"bench_gate: scale mismatch (current 1/{cur_scale}, "
              f"baseline 1/{base['scale']}) — numbers are not comparable",
              file=sys.stderr)
        sys.exit(2)

    baseline_rows = {key(r, args.baseline): r for r in base["results"]}
    failures = []
    new_rows = []
    compared = 0
    seen = set()
    for row, path in cur_rows:
        k = key(row, path)
        seen.add(k)
        ref = baseline_rows.get(k)
        if ref is None:
            status = "skipped" if args.allow_new_rows else "no baseline row"
            p99 = row.get("p99_ms")
            shown = f"p99 {p99:.2f} ms" if p99 is not None else "no p99"
            print(f"  [new] {row['workload']} / {row['collector']}: "
                  f"{shown} ({status})")
            if not args.allow_new_rows:
                new_rows.append(k)
            continue
        compared += 1
        if "p99_ms" in ref:
            cur_p99 = field(row, "p99_ms", path)
            ref_p99 = field(ref, "p99_ms", args.baseline)
            limit = ref_p99 * (1.0 + args.max_regress)
            verdict = "OK" if cur_p99 <= limit else "REGRESSED"
            print(f"  [{verdict}] {row['workload']} / {row['collector']}: "
                  f"p99 {cur_p99:.2f} ms vs baseline {ref_p99:.2f} ms "
                  f"(limit {limit:.2f} ms)")
            if cur_p99 > limit:
                print(f"bench_gate: {row['workload']} / {row['collector']}: "
                      f"p99 {cur_p99:.2f} ms exceeds the {limit:.2f} ms "
                      f"tolerance (baseline {ref_p99:.2f} ms + "
                      f"{args.max_regress:.0%})", file=sys.stderr)
                failures.append(k)

        # Micro rows: ns/op is machine-dependent (printed for trend
        # reading only); the gated value is the within-run speedup of
        # the fast path over the reference path it replaced.
        if "speedup_vs_reference" in ref:
            cur_s = field(row, "speedup_vs_reference", path)
            cur_ns = field(row, "ns_per_op", path)
            ref_ns = field(row, "ns_per_op_reference", path)
            verdict = "OK" if cur_s >= args.min_speedup else "REGRESSED"
            print(f"  [{verdict}] {row['workload']} / {row['collector']}: "
                  f"{cur_ns:.2f} ns/op vs reference {ref_ns:.2f} ns/op "
                  f"(speedup {cur_s:.2f}x, floor {args.min_speedup:.2f}x)")
            if cur_s < args.min_speedup:
                print(f"bench_gate: {row['workload']} / {row['collector']}: "
                      f"fast path speedup {cur_s:.2f}x fell below the "
                      f"{args.min_speedup:.2f}x floor — the fast path "
                      f"lost to the reference path it replaced",
                      file=sys.stderr)
                failures.append((k[0], f"{k[1]} [speedup]"))

        # Warm-start fields: present on ROLP rows since the profile
        # persistence work. A baseline row carrying them obliges the
        # current row to carry them too (field() fails readably if the
        # harness stopped emitting them).
        if "warmup_p99_ms" in ref:
            cur_w = field(row, "warmup_p99_ms", path)
            ref_w = field(ref, "warmup_p99_ms", args.baseline)
            wlimit = ref_w * (1.0 + args.max_regress)
            verdict = "OK" if cur_w <= wlimit else "REGRESSED"
            print(f"  [{verdict}] {row['workload']} / {row['collector']}: "
                  f"warmup p99 {cur_w:.2f} ms vs baseline {ref_w:.2f} ms "
                  f"(limit {wlimit:.2f} ms)")
            if cur_w > wlimit:
                print(f"bench_gate: {row['workload']} / {row['collector']}: "
                      f"warmup p99 {cur_w:.2f} ms exceeds the {wlimit:.2f} ms "
                      f"tolerance (baseline {ref_w:.2f} ms + "
                      f"{args.max_regress:.0%})", file=sys.stderr)
                failures.append((k[0], f"{k[1]} [warmup p99]"))
        # Service-mode fields: present on the quick-mode `(served)` rows
        # since the rolp-serve harness. Attainment is gated on an
        # absolute drop (a fraction of requests, not a latency, so a
        # relative margin would be meaningless near 1.0); served p99 uses
        # the same relative margin as the pause percentiles.
        if "slo_attainment" in ref:
            cur_a = field(row, "slo_attainment", path)
            ref_a = field(ref, "slo_attainment", args.baseline)
            floor = ref_a - 0.02
            verdict = "OK" if cur_a >= floor else "REGRESSED"
            print(f"  [{verdict}] {row['workload']} / {row['collector']}: "
                  f"SLO attainment {cur_a:.4f} vs baseline {ref_a:.4f} "
                  f"(floor {floor:.4f})")
            if cur_a < floor:
                print(f"bench_gate: {row['workload']} / {row['collector']}: "
                      f"SLO attainment {cur_a:.4f} fell more than 0.02 below "
                      f"the baseline {ref_a:.4f}", file=sys.stderr)
                failures.append((k[0], f"{k[1]} [slo attainment]"))
        if "served_p99_ms" in ref:
            cur_s = field(row, "served_p99_ms", path)
            ref_s = field(ref, "served_p99_ms", args.baseline)
            slimit = ref_s * (1.0 + args.max_regress)
            verdict = "OK" if cur_s <= slimit else "REGRESSED"
            print(f"  [{verdict}] {row['workload']} / {row['collector']}: "
                  f"served p99 {cur_s:.2f} ms vs baseline {ref_s:.2f} ms "
                  f"(limit {slimit:.2f} ms)")
            if cur_s > slimit:
                print(f"bench_gate: {row['workload']} / {row['collector']}: "
                      f"served p99 {cur_s:.2f} ms exceeds the {slimit:.2f} ms "
                      f"tolerance (baseline {ref_s:.2f} ms + "
                      f"{args.max_regress:.0%})", file=sys.stderr)
                failures.append((k[0], f"{k[1]} [served p99]"))
        if "epochs_to_stable" in ref:
            cur_e = field(row, "epochs_to_stable", path)
            ref_e = field(ref, "epochs_to_stable", args.baseline)
            verdict = "OK" if cur_e <= ref_e else "REGRESSED"
            print(f"  [{verdict}] {row['workload']} / {row['collector']}: "
                  f"stable at epoch {cur_e} vs baseline {ref_e}")
            if cur_e > ref_e:
                print(f"bench_gate: {row['workload']} / {row['collector']}: "
                      f"stable at epoch {cur_e} vs baseline {ref_e}",
                      file=sys.stderr)
                failures.append((k[0], f"{k[1]} [epochs to stable]"))

    # A baseline row with no current counterpart means coverage was
    # silently dropped (a workload or collector stopped being benched) —
    # that must fail as loudly as a regression would. Under --partial
    # the check is scoped to the workloads the current file(s) mention,
    # so a single-bench job doesn't trip over the other benches' rows.
    dropped = sorted(set(baseline_rows) - seen)
    if args.partial:
        covered = {w for w, _ in seen}
        dropped = [(w, c) for w, c in dropped if w in covered]
    for w, c in dropped:
        print(f"  [MISSING] {w} / {c}: in {args.baseline} but absent "
              f"from {', '.join(args.current)}")

    if compared == 0:
        print("bench_gate: no comparable rows between current and baseline",
              file=sys.stderr)
        sys.exit(2)
    if failures or dropped or new_rows:
        msgs = []
        if failures:
            names = ", ".join(f"{w}/{c}" for w, c in failures)
            msgs.append(f"p99 regression beyond {args.max_regress:.0%}: {names}")
        if dropped:
            names = ", ".join(f"{w}/{c}" for w, c in dropped)
            msgs.append(f"baseline row(s) missing from current run: {names}")
        if new_rows:
            names = ", ".join(f"{w}/{c}" for w, c in new_rows)
            msgs.append(f"row(s) without a baseline (regenerate "
                        f"BENCH_baseline.json or pass --allow-new-rows): "
                        f"{names}")
        print(f"bench_gate: {'; '.join(msgs)}", file=sys.stderr)
        sys.exit(1)
    print(f"bench_gate: {compared} run(s) within {args.max_regress:.0%} of baseline")


if __name__ == "__main__":
    main()
