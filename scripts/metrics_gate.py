#!/usr/bin/env python3
"""Telemetry gate for the per-PR smoke run.

Validates the live-metrics artifacts a `rolp-sim` run emits and enforces
the paper's ~5% profiling-overhead bound (ROLP §8.3) on self-measured
numbers:

1. `--jsonl` — the `--metrics-out` stream. Every line must be a flat
   JSON object with the `rolp-metrics-v1` schema: all time buckets,
   event counters, gauges, and histogram percentile keys present;
   versions strictly increasing; timestamps and monotonic metrics
   non-decreasing; and the final snapshot's `profiling_overhead` within
   the bound.
2. `--prom` (optional) — the `--metrics-prom` dump. Spot-checks the
   Prometheus text exposition: bucket/counter families, the overhead
   gauge, and the snapshot version are present.
3. `--bench` (optional) — a `ROLP_BENCH_JSON` stats file from the quick
   `fig8_9_pause_distribution` run. Every ROLP row's self-measured
   `profiling_overhead` must stay within the bound.

Usage:
    scripts/metrics_gate.py --jsonl run.jsonl [--prom run.prom]
                            [--bench bench_stats.json]
                            [--max-overhead 0.05]

Exit status: 0 = all good, 1 = gate violation, 2 = usage/format error.
"""

import argparse
import json
import sys

BUCKETS = [
    "mutator_app", "mutator_profiling", "jit_compile", "idle",
    "gc_mark", "gc_evac", "gc_remset", "gc_profiling", "gc_other",
    "profiler_merge", "profiler_infer", "profiler_resolve",
    "profiler_publish",
]
COUNTERS = [
    "profiled_allocs", "unprofiled_allocs", "jit_compiles", "gc_pauses",
    "epochs_inferred", "profile_entries_imported", "profile_blend_decays",
    "shard_merge_ns", "shard_lock_wait", "serve_requests",
    "serve_slo_misses", "tlab_refills", "microcache_hits",
    "microcache_misses", "age0_flushed",
]
GAUGES = [
    "heap_used_bytes", "heap_committed_bytes", "decision_version",
    "governor_state",
]
HISTOGRAMS = [
    "gc_pause_ns", "jit_compile_ns", "profiler_epoch_ns",
    "serve_latency_ns", "serve_queue_ns",
]
HIST_SUFFIXES = ["count", "p50", "p90", "p99", "max"]

# Keys that may only grow between consecutive snapshots (cumulative
# counters; gauges and histogram percentiles may move both ways).
MONOTONIC = (
    ["version", "at_ns", "busy_mutator_ns"]
    + [f"time_{b}_ns" for b in BUCKETS]
    + [f"count_{c}" for c in COUNTERS]
    + [f"{h}_count" for h in HISTOGRAMS]
)


def required_keys():
    keys = ["schema", "version", "at_ns", "busy_mutator_ns",
            "profiling_overhead"]
    keys += [f"time_{b}_ns" for b in BUCKETS]
    keys += [f"count_{c}" for c in COUNTERS]
    keys += GAUGES
    for h in HISTOGRAMS:
        keys += [f"{h}_{s}" for s in HIST_SUFFIXES]
    return keys


def fail(msg):
    print(f"metrics_gate: {msg}", file=sys.stderr)
    sys.exit(1)


def usage_error(msg):
    print(f"metrics_gate: {msg}", file=sys.stderr)
    sys.exit(2)


def check_jsonl(path, max_overhead):
    try:
        with open(path) as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
    except OSError as e:
        usage_error(f"cannot read {path}: {e}")
    if not lines:
        fail(f"{path} contains no snapshots")

    need = required_keys()
    prev = None
    for i, line in enumerate(lines, start=1):
        try:
            row = json.loads(line)
        except ValueError as e:
            fail(f"{path}:{i}: not valid JSON ({e})")
        if not isinstance(row, dict):
            fail(f"{path}:{i}: snapshot row is not an object")
        if row.get("schema") != "rolp-metrics-v1":
            fail(f"{path}:{i}: schema is {row.get('schema')!r}, "
                 f"expected 'rolp-metrics-v1'")
        missing = [k for k in need if k not in row]
        if missing:
            fail(f"{path}:{i}: missing key(s) {missing}")
        if prev is not None:
            if row["version"] <= prev["version"]:
                fail(f"{path}:{i}: version {row['version']} does not "
                     f"increase over {prev['version']}")
            for k in MONOTONIC:
                if row[k] < prev[k]:
                    fail(f"{path}:{i}: cumulative '{k}' went backwards "
                         f"({prev[k]} -> {row[k]})")
        prev = row

    overhead = prev["profiling_overhead"]
    if overhead > max_overhead:
        fail(f"{path}: final self-measured profiling overhead "
             f"{overhead:.4f} exceeds the {max_overhead:.2f} bound")
    print(f"  [OK] {path}: {len(lines)} snapshot(s), schema valid, final "
          f"overhead {overhead * 100:.2f}% (limit "
          f"{max_overhead * 100:.0f}%)")


def check_prom(path):
    try:
        with open(path) as f:
            text = f.read()
    except OSError as e:
        usage_error(f"cannot read {path}: {e}")
    probes = (
        ['rolp_time_ns{bucket="%s"}' % b for b in BUCKETS]
        + ['rolp_events_total{event="%s"}' % c for c in COUNTERS]
        + [f"rolp_{g}" for g in GAUGES]
        + ["rolp_profiling_overhead", "rolp_snapshot_version",
           "rolp_snapshot_at_ns"]
    )
    missing = [p for p in probes if p not in text]
    if missing:
        fail(f"{path}: missing Prometheus series {missing}")
    print(f"  [OK] {path}: Prometheus exposition complete "
          f"({len(probes)} series probed)")


def check_bench(path, max_overhead):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        usage_error(f"cannot read {path}: {e}")
    rows = data.get("results")
    if not isinstance(rows, list) or not rows:
        usage_error(f"{path} is not a bench stats file")
    checked = 0
    for row in rows:
        collector = row.get("collector", "")
        if "ROLP" not in collector:
            continue
        overhead = row.get("profiling_overhead")
        if overhead is None:
            fail(f"{path}: row {row.get('workload')}/{collector} has no "
                 f"'profiling_overhead' — regenerate with the current "
                 f"bench harness")
        if overhead > max_overhead:
            fail(f"{path}: {row.get('workload')}/{collector} self-measured "
                 f"overhead {overhead:.4f} exceeds the "
                 f"{max_overhead:.2f} bound")
        checked += 1
        print(f"  [OK] {row.get('workload')}/{collector}: overhead "
              f"{overhead * 100:.2f}% (limit {max_overhead * 100:.0f}%)")
    if checked == 0:
        fail(f"{path}: no ROLP rows to check")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--jsonl", help="--metrics-out JSONL stream to validate")
    ap.add_argument("--prom", help="--metrics-prom dump to validate")
    ap.add_argument("--bench", help="ROLP_BENCH_JSON stats file to gate")
    ap.add_argument("--max-overhead", type=float, default=0.05,
                    help="allowed profiling overhead fraction "
                         "(default 0.05)")
    args = ap.parse_args()
    if not (args.jsonl or args.prom or args.bench):
        usage_error("nothing to check: pass --jsonl, --prom, or --bench")

    if args.jsonl:
        check_jsonl(args.jsonl, args.max_overhead)
    if args.prom:
        check_prom(args.prom)
    if args.bench:
        check_bench(args.bench, args.max_overhead)
    print("metrics_gate: all checks passed")


if __name__ == "__main__":
    main()
